package cert_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"licm/internal/cert"
	"licm/internal/expr"
	"licm/internal/solver"
)

// knapCardProblem is a deterministic mixed problem: a global knapsack
// row plus disjoint cardinality groups — the same shape the paper's
// queries produce after translation, hard enough that certification
// exercises LP leaves and (on the cycle groups) branching.
func knapCardProblem() *solver.Problem {
	const n = 24
	obj := expr.Lin{}
	knap := expr.Lin{}
	for v := 0; v < n; v++ {
		obj = obj.AddTerm(expr.Var(v), int64(1+(v*7)%5))
		knap = knap.AddTerm(expr.Var(v), int64(1+(v*3)%4))
	}
	cons := []expr.Constraint{expr.NewConstraint(knap, expr.LE, 18)}
	for g := 0; g < 4; g++ {
		lo := expr.Var(g * 6)
		cons = append(cons,
			expr.NewConstraint(expr.Sum(lo, lo+1, lo+2, lo+3, lo+4, lo+5), expr.LE, 3),
			expr.NewConstraint(expr.Sum(lo, lo+1), expr.GE, 1),
		)
	}
	return &solver.Problem{NumVars: n, Constraints: cons, Objective: obj}
}

// solveCertified solves p in both senses and returns the built
// certificates plus the two results.
func solveCertified(t *testing.T, p *solver.Problem) ([]*cert.Certificate, solver.Result, solver.Result) {
	t.Helper()
	crec := &solver.CertRecorder{}
	opts := solver.DefaultOptions()
	opts.Certify = crec
	minRes, maxRes, err := solver.Bounds(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	certs, err := cert.Build("q", "row", 2, crec)
	if err != nil {
		t.Fatal(err)
	}
	return certs, minRes, maxRes
}

// TestRoundTripVerify: live certificates survive a strict JSONL round
// trip, verify clean, and the verified values equal the solver's
// reported results exactly — the end-to-end soundness contract the CI
// cert gate enforces.
func TestRoundTripVerify(t *testing.T) {
	certs, minRes, maxRes := solveCertified(t, knapCardProblem())
	if len(certs) != 2 {
		t.Fatalf("built %d certificates, want 2 (max then min)", len(certs))
	}

	var buf bytes.Buffer
	for _, c := range certs {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := cert.WriteJSONL(&buf, c); err != nil {
			t.Fatal(err)
		}
	}
	back, err := cert.ReadJSONL(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read back %d certificates, want 2", len(back))
	}

	for i, c := range back {
		v, err := cert.Verify(c)
		if err != nil {
			t.Fatalf("certificate %d rejected: %v", i, err)
		}
		if len(v.Skipped) != 0 {
			t.Fatalf("certificate %d has skipped components: %v", i, v.Skipped)
		}
		if !v.Proven || v.Err != "" {
			t.Fatalf("certificate %d verdict %+v, want clean proven", i, v)
		}
		if v.Verified != len(c.Comps) {
			t.Fatalf("certificate %d verified %d of %d components", i, v.Verified, len(c.Comps))
		}
		if v.Query != "q" || c.Scheme != "row" || c.K != 2 {
			t.Fatalf("certificate %d lost its labels: %+v", i, v)
		}
	}
	// The verified values must equal the solver results exactly (the
	// min run is recorded in the negated maximization frame).
	if back[0].Sense != "max" || back[0].Value != maxRes.Value {
		t.Fatalf("max certificate value %d, solver reported %d", back[0].Value, maxRes.Value)
	}
	if back[1].Sense != "min" || back[1].Value != -minRes.Value {
		t.Fatalf("min certificate value %d, solver reported minimum %d", back[1].Value, minRes.Value)
	}
}

// rejected reports whether a mutant fails the strict read or the
// verifier — every deliberate corruption must trip at least one gate.
func rejected(t *testing.T, m cert.Mutant) bool {
	t.Helper()
	var buf bytes.Buffer
	if err := cert.WriteJSONL(&buf, m.Cert); err != nil {
		t.Fatal(err)
	}
	back, err := cert.ReadJSONL(&buf, true)
	if err != nil {
		return true
	}
	if len(back) != 1 {
		t.Fatalf("mutant %s: read %d certificates", m.Name, len(back))
	}
	_, err = cert.Verify(back[0])
	return err != nil
}

// TestMutantsRejected: every deterministic corruption of a live
// certificate is rejected.
func TestMutantsRejected(t *testing.T) {
	certs, _, _ := solveCertified(t, knapCardProblem())
	for _, c := range certs {
		muts := cert.Mutants(c)
		if len(muts) < 6 {
			t.Fatalf("only %d mutants generated for a live certificate", len(muts))
		}
		names := map[string]bool{}
		for _, m := range muts {
			names[m.Name] = true
			if !rejected(t, m) {
				t.Errorf("mutant %q accepted by the verifier", m.Name)
			}
		}
		for _, want := range []string{"value-inflate", "witness-flip", "fingerprint-tamper", "rhs-tamper", "schema-tag"} {
			if !names[want] {
				t.Errorf("mutant suite missing %q (got %v)", want, names)
			}
		}
	}
}

// TestVerifyInfeasible: an infeasible store certifies with farkas
// trees that verify clean; the run records its error, so no value
// accounting is claimed.
func TestVerifyInfeasible(t *testing.T) {
	cons := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1, 2), expr.GE, 2),
		expr.NewConstraint(expr.Sum(0, 1, 2), expr.LE, 1),
	}
	p := &solver.Problem{NumVars: 3, Constraints: cons, Objective: expr.Sum(0)}
	crec := &solver.CertRecorder{}
	opts := solver.DefaultOptions()
	opts.Certify = crec
	if _, err := solver.Maximize(p, opts); !errors.Is(err, solver.ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
	certs, err := cert.Build("", "", 0, crec)
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != 1 {
		t.Fatalf("built %d certificates, want 1", len(certs))
	}
	v, err := cert.Verify(certs[0])
	if err != nil {
		t.Fatalf("infeasibility certificate rejected: %v", err)
	}
	if v.Err == "" || v.Verified == 0 {
		t.Fatalf("verdict %+v, want a verified infeasibility with the run error recorded", v)
	}
}

// TestVerifySkipped: components the solver could not prove are carried
// as skipped — accepted by Verify but surfaced on the verdict for
// -strict to flag.
func TestVerifySkipped(t *testing.T) {
	p := knapCardProblem()
	crec := &solver.CertRecorder{}
	opts := solver.DefaultOptions()
	opts.UseLP = false
	opts.MaxNodes = 20
	opts.Certify = crec
	res, err := solver.Maximize(p, opts)
	if err != nil {
		t.Skipf("budget starved before a feasible point: %v", err)
	}
	if res.Proven {
		t.Skip("solve unexpectedly proven; cannot exercise the skip path")
	}
	certs, err := cert.Build("", "", 0, crec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cert.Verify(certs[0])
	if err != nil {
		t.Fatalf("certificate with skipped components rejected: %v", err)
	}
	if len(v.Skipped) == 0 {
		t.Fatal("unproven solve produced no skipped components")
	}
	for _, s := range v.Skipped {
		if !strings.Contains(s, "unproven") {
			t.Fatalf("skip reason %q does not name the cause", s)
		}
	}
}

// TestVerifyRejectsHandEdits: targeted manual corruptions beyond the
// Mutants suite — a forged leaf bound and a truncated tree.
func TestVerifyRejectsHandEdits(t *testing.T) {
	certs, _, _ := solveCertified(t, knapCardProblem())

	// Truncate the first component's tree entirely: an optimal claim
	// with no proof tree must be rejected.
	var buf bytes.Buffer
	if err := cert.WriteJSONL(&buf, certs[0]); err != nil {
		t.Fatal(err)
	}
	back, err := cert.ReadJSONL(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	cp := back[0]
	for i := range cp.Comps {
		if cp.Comps[i].Status == cert.StatusOptimal {
			cp.Comps[i].Tree = nil
			break
		}
	}
	if _, err := cert.Verify(cp); err == nil {
		t.Fatal("optimal component with no proof tree accepted")
	}
}
