package cert

import (
	"fmt"
	"math/big"

	"licm/internal/explain"
	"licm/internal/expr"
	"licm/internal/solver"
)

// Verdict summarizes a successful verification of one certificate.
// Skipped lists the components that carried no proof (unproven
// solves) with their reasons — clean in default mode, findings under
// -strict.
type Verdict struct {
	Query    string
	Sense    string
	Base     int64
	Value    int64
	Proven   bool
	Err      string
	Verified int
	Skipped  []string
}

// Verify checks a certificate end to end: schema, per-component
// fingerprint binding, witness feasibility and value, exact replay of
// every leaf justification, branch-tree coverage of the full 0/1
// space, and the run-level value accounting. A nil error means every
// non-skipped claim in the certificate is mathematically sound.
func Verify(c *Certificate) (Verdict, error) {
	v := Verdict{Query: c.Query, Sense: c.Sense, Base: c.Base, Value: c.Value, Proven: c.Proven, Err: c.Err}
	if c.Schema != Schema {
		return v, fmt.Errorf("schema %q, want %q", c.Schema, Schema)
	}
	if c.Sense != "max" && c.Sense != "min" {
		return v, fmt.Errorf("sense %q, want max or min", c.Sense)
	}
	sum := c.Base
	allOptimal := true
	for i := range c.Comps {
		cc := &c.Comps[i]
		if err := verifyComp(cc); err != nil {
			return v, fmt.Errorf("component %d (fingerprint %s): %w", cc.Index, cc.Fingerprint, err)
		}
		switch cc.Status {
		case StatusSkipped:
			v.Skipped = append(v.Skipped, fmt.Sprintf("component %d: %s", cc.Index, cc.Skip))
			allOptimal = false
		case StatusInfeasible:
			v.Verified++
			allOptimal = false
		default:
			v.Verified++
			sum += cc.Value
		}
	}
	// Value accounting: a clean proven run must decompose exactly into
	// base + certified component optima. Runs that errored or are
	// unproven make no such claim (their comps are skipped or the run
	// carries Err), so there is nothing to equate.
	if c.Proven && c.Err == "" {
		if !allOptimal {
			return v, fmt.Errorf("run is marked proven but not every component certificate is optimal")
		}
		if sum != c.Value {
			return v, fmt.Errorf("value accounting: base %d + component optima = %d, certificate claims %d", c.Base, sum, c.Value)
		}
	}
	return v, nil
}

// verifyComp checks one component certificate.
func verifyComp(cc *Comp) error {
	if cc.Vars < 0 {
		return fmt.Errorf("negative variable count")
	}
	if len(cc.Obj) != cc.Vars {
		return fmt.Errorf("objective has %d coefficients, want %d", len(cc.Obj), cc.Vars)
	}
	cons := make([]solver.ExplainCon, len(cc.Cons))
	for i := range cc.Cons {
		con := &cc.Cons[i]
		op, err := parseOp(con.Op)
		if err != nil {
			return err
		}
		if len(con.Vars) != len(con.Coef) {
			return fmt.Errorf("row %d: %d variables, %d coefficients", i, len(con.Vars), len(con.Coef))
		}
		for _, u := range con.Vars {
			if u < 0 || int(u) >= cc.Vars {
				return fmt.Errorf("row %d references variable %d outside [0,%d)", i, u, cc.Vars)
			}
		}
		cons[i] = solver.ExplainCon{Vars: con.Vars, Coef: con.Coef, Op: op, RHS: con.RHS}
	}
	// The fingerprint binds the proof to the matrix: recompute it from
	// the matrix the certificate itself carries. A mismatch means the
	// proof talks about a different problem than its key claims.
	if fp := explain.Fingerprint(cc.Vars, cc.Obj, cons); fp != cc.Fingerprint {
		return fmt.Errorf("fingerprint mismatch: matrix hashes to %s", fp)
	}
	switch cc.Status {
	case StatusSkipped:
		if cc.Tree != nil || cc.Witness != nil {
			return fmt.Errorf("skipped component carries proof data")
		}
		return nil
	case StatusOptimal:
		if len(cc.Witness) != cc.Vars {
			return fmt.Errorf("witness has %d entries, want %d", len(cc.Witness), cc.Vars)
		}
		val, feasible, err := evalPoint(cc, cons, cc.Witness, nil)
		if err != nil {
			return fmt.Errorf("witness: %w", err)
		}
		if !feasible {
			return fmt.Errorf("witness violates the constraints")
		}
		if val != cc.Value {
			return fmt.Errorf("witness has value %d, certificate claims %d", val, cc.Value)
		}
		if cc.Tree == nil {
			return fmt.Errorf("optimal component has no proof tree")
		}
		w := &walker{comp: cc, cons: cons, hasVstar: true, vstar: cc.Value, dec: freshDec(cc.Vars)}
		return w.walk(cc.Tree)
	case StatusInfeasible:
		if cc.Witness != nil {
			return fmt.Errorf("infeasible component carries a witness")
		}
		if cc.Tree == nil {
			return fmt.Errorf("infeasible component has no proof tree")
		}
		w := &walker{comp: cc, cons: cons, dec: freshDec(cc.Vars)}
		return w.walk(cc.Tree)
	default:
		return fmt.Errorf("unknown status %q", cc.Status)
	}
}

func freshDec(n int) []int8 {
	dec := make([]int8, n)
	for i := range dec {
		dec[i] = -1
	}
	return dec
}

// evalPoint evaluates a complete 0/1 point: objective value and exact
// feasibility. dec, when non-nil, additionally requires the point to
// agree with the already-decided variables.
func evalPoint(cc *Comp, cons []solver.ExplainCon, x []int8, dec []int8) (val int64, feasible bool, err error) {
	for j, b := range x {
		if b != 0 && b != 1 {
			return 0, false, fmt.Errorf("entry %d is %d, not 0/1", j, b)
		}
		if dec != nil && dec[j] >= 0 && dec[j] != b {
			return 0, false, fmt.Errorf("entry %d contradicts the branch decisions", j)
		}
		if b == 1 {
			val += cc.Obj[j]
		}
	}
	for i := range cons {
		var act int64
		for k, u := range cons[i].Vars {
			if x[u] == 1 {
				act += cons[i].Coef[k]
			}
		}
		switch cons[i].Op {
		case expr.LE:
			if act > cons[i].RHS {
				return val, false, nil
			}
		case expr.GE:
			if act < cons[i].RHS {
				return val, false, nil
			}
		default:
			if act != cons[i].RHS {
				return val, false, nil
			}
		}
	}
	return val, true, nil
}

// walker replays a proof tree, maintaining the branch decisions.
type walker struct {
	comp     *Comp
	cons     []solver.ExplainCon
	hasVstar bool
	vstar    int64
	dec      []int8
}

func (w *walker) walk(nd *Node) error {
	if nd == nil {
		return fmt.Errorf("proof tree has a missing node")
	}
	if nd.Var >= 0 {
		if nd.Leaf != "" || nd.Y != nil || nd.X != nil || nd.Bound != "" {
			return fmt.Errorf("branch node on variable %d carries leaf data", nd.Var)
		}
		if int(nd.Var) >= w.comp.Vars {
			return fmt.Errorf("branch on variable %d outside [0,%d)", nd.Var, w.comp.Vars)
		}
		if w.dec[nd.Var] != -1 {
			return fmt.Errorf("variable %d decided twice on one path", nd.Var)
		}
		if nd.Zero == nil || nd.One == nil {
			return fmt.Errorf("branch on variable %d does not cover both values", nd.Var)
		}
		w.dec[nd.Var] = 0
		if err := w.walk(nd.Zero); err != nil {
			return err
		}
		w.dec[nd.Var] = 1
		if err := w.walk(nd.One); err != nil {
			return err
		}
		w.dec[nd.Var] = -1
		return nil
	}
	if nd.Var != -1 {
		return fmt.Errorf("leaf node has var %d, want -1", nd.Var)
	}
	if nd.Zero != nil || nd.One != nil {
		return fmt.Errorf("leaf node has children")
	}
	y, err := w.parseY(nd.Y)
	if err != nil {
		return err
	}
	switch nd.Leaf {
	case LeafDual:
		if !w.hasVstar {
			return fmt.Errorf("dual leaf inside an infeasibility proof")
		}
		u := w.dualBound(y)
		if err := w.checkClaimedBound(nd.Bound, u); err != nil {
			return err
		}
		// Integral objective: no point of the subtree beats vstar iff
		// the dual box bound is below vstar+1.
		if u.Cmp(new(big.Rat).SetInt64(w.vstar+1)) >= 0 {
			return fmt.Errorf("dual leaf bound %s does not dominate incumbent %d", u.RatString(), w.vstar)
		}
		return nil
	case LeafIntopt:
		if !w.hasVstar {
			return fmt.Errorf("intopt leaf inside an infeasibility proof")
		}
		if len(nd.X) != w.comp.Vars {
			return fmt.Errorf("intopt point has %d entries, want %d", len(nd.X), w.comp.Vars)
		}
		val, feasible, err := evalPoint(w.comp, w.cons, nd.X, w.dec)
		if err != nil {
			return fmt.Errorf("intopt point: %w", err)
		}
		if !feasible {
			return fmt.Errorf("intopt point violates the constraints")
		}
		if val > w.vstar {
			return fmt.Errorf("intopt point has value %d, above the claimed optimum %d", val, w.vstar)
		}
		u := w.dualBound(y)
		if err := w.checkClaimedBound(nd.Bound, u); err != nil {
			return err
		}
		if u.Cmp(new(big.Rat).SetInt64(val+1)) >= 0 {
			return fmt.Errorf("intopt leaf bound %s does not pin its point's value %d", u.RatString(), val)
		}
		return nil
	case LeafFarkas:
		if y == nil {
			return fmt.Errorf("farkas leaf has no multipliers")
		}
		return w.checkFarkas(y)
	default:
		return fmt.Errorf("unknown leaf kind %q", nd.Leaf)
	}
}

// parseY parses and sign-checks a multiplier vector: y_i >= 0 for LE
// rows, y_i <= 0 for GE rows, free for EQ. The verifier rejects
// sign violations outright (the emitter clips; a violation here means
// the certificate was not produced by a sound emitter). nil input is
// the all-zero vector.
func (w *walker) parseY(ys []string) ([]*big.Rat, error) {
	if ys == nil {
		return nil, nil
	}
	if len(ys) != len(w.cons) {
		return nil, fmt.Errorf("multiplier vector has %d entries, want %d", len(ys), len(w.cons))
	}
	out := make([]*big.Rat, len(ys))
	for i, s := range ys {
		r, err := parseRat(s)
		if err != nil {
			return nil, err
		}
		switch w.cons[i].Op {
		case expr.LE:
			if r.Sign() < 0 {
				return nil, fmt.Errorf("row %d: negative multiplier %s on a <= row", i, s)
			}
		case expr.GE:
			if r.Sign() > 0 {
				return nil, fmt.Errorf("row %d: positive multiplier %s on a >= row", i, s)
			}
		}
		if r.Sign() != 0 {
			out[i] = r
		}
	}
	return out, nil
}

// checkClaimedBound cross-checks a leaf's claimed bound against the
// recomputed one; any drift is rejected (the claim is redundant, so
// disagreement means tampering or an emitter bug).
func (w *walker) checkClaimedBound(claimed string, u *big.Rat) error {
	if claimed == "" {
		return nil
	}
	r, err := parseRat(claimed)
	if err != nil {
		return err
	}
	if r.Cmp(u) != 0 {
		return fmt.Errorf("claimed bound %s, recomputed %s", claimed, u.RatString())
	}
	return nil
}

// dualBound computes the weak-duality box bound of a sign-correct
// multiplier vector under the current decisions, entirely in big.Rat:
//
//	U = sum_i y_i b_i + sum_j max over the box of (c_j - sum_i y_i a_ij) x_j
//
// where the box is {dec[j]} for decided variables and [0,1] for free
// ones. For every feasible x in the box, c·x <= U: multiplying each
// row by its (sign-correct) y_i and summing turns the constraints
// into sum_i y_i (a_i x) <= sum_i y_i b_i, and the residual
// objective r = c - A^T y is bounded on the box by taking each
// variable at its best end.
func (w *walker) dualBound(y []*big.Rat) *big.Rat {
	u := new(big.Rat)
	red := make([]*big.Rat, w.comp.Vars)
	for j, c := range w.comp.Obj {
		if c != 0 {
			red[j] = new(big.Rat).SetInt64(c)
		}
	}
	for i, yi := range y {
		if yi == nil {
			continue
		}
		con := &w.cons[i]
		u.Add(u, new(big.Rat).Mul(yi, new(big.Rat).SetInt64(con.RHS)))
		for k, v := range con.Vars {
			if red[v] == nil {
				red[v] = new(big.Rat)
			}
			red[v].Sub(red[v], new(big.Rat).Mul(yi, new(big.Rat).SetInt64(con.Coef[k])))
		}
	}
	for j, r := range red {
		if r == nil {
			continue
		}
		switch w.dec[j] {
		case 1:
			u.Add(u, r)
		case 0:
			// x_j = 0 contributes nothing
		default:
			if r.Sign() > 0 {
				u.Add(u, r)
			}
		}
	}
	return u
}

// checkFarkas verifies an infeasibility vector: with d = sum_i y_i a_i
// and e = sum_i y_i b_i, every x in the box satisfying the rows would
// satisfy d·x <= e; if even the box minimum of d·x exceeds e, no such
// x exists.
func (w *walker) checkFarkas(y []*big.Rat) error {
	agg := make([]*big.Rat, w.comp.Vars)
	e := new(big.Rat)
	nonzero := false
	for i, yi := range y {
		if yi == nil {
			continue
		}
		nonzero = true
		con := &w.cons[i]
		e.Add(e, new(big.Rat).Mul(yi, new(big.Rat).SetInt64(con.RHS)))
		for k, v := range con.Vars {
			if agg[v] == nil {
				agg[v] = new(big.Rat)
			}
			agg[v].Add(agg[v], new(big.Rat).Mul(yi, new(big.Rat).SetInt64(con.Coef[k])))
		}
	}
	if !nonzero {
		return fmt.Errorf("farkas leaf has an all-zero multiplier vector")
	}
	minAct := new(big.Rat)
	for j, a := range agg {
		if a == nil {
			continue
		}
		switch w.dec[j] {
		case 1:
			minAct.Add(minAct, a)
		case 0:
			// contributes nothing
		default:
			if a.Sign() < 0 {
				minAct.Add(minAct, a)
			}
		}
	}
	if minAct.Cmp(e) <= 0 {
		return fmt.Errorf("farkas combination does not refute the box: min activity %s <= rhs %s", minAct.RatString(), e.RatString())
	}
	return nil
}
