package tracean

// This file holds tracean's one exact float comparison, following the
// repo's floatcmp discipline (see internal/simplex/tol.go).

// integralFloat reports whether f is exactly representable as an int64
// that round-trips back to f, and returns that integer. Exactness is
// the point: attr values that were produced as integers (counts, ns
// durations) survive JSON's float64 erasure losslessly up to 2^53, and
// only a lossless round-trip may be normalized back — a tolerance here
// would corrupt near-integral genuine floats like an acceptance rate
// of 0.9999999.
func integralFloat(f float64) (int64, bool) {
	if f < -(1<<53) || f > 1<<53 {
		return 0, false
	}
	i := int64(f)
	return i, float64(i) == f
}
