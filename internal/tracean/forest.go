package tracean

import (
	"fmt"
	"io"
	"time"

	"licm/internal/obs"
)

// Span is one reconstructed span: a start/end pair with its children
// and the plain events emitted under it.
type Span struct {
	Name   string
	ID     int64
	Parent int64 // 0 = root
	Start  time.Time
	DurNs  int64
	// SelfNs is DurNs minus the duration of direct children — the time
	// attributable to this span alone, which is what rollups and
	// folded stacks weigh.
	SelfNs     int64
	StartSeq   int64
	EndSeq     int64
	StartAttrs map[string]any
	EndAttrs   map[string]any
	Children   []*Span
	Events     []obs.Event
}

// Trace is a fully reconstructed and validated trace.
type Trace struct {
	// Schema is the version stamp found on the trace ("" on
	// pre-versioning traces).
	Schema string
	// Events holds every event in emission order, including the plain
	// events whose parent span is unknown.
	Events []obs.Event
	// Roots are the parentless spans in start order.
	Roots []*Span
	// ByID indexes every span.
	ByID map[int64]*Span
	// Start/End bound the trace's wall-clock window; WallNs is their
	// distance (0 for traces with fewer than two timestamps).
	Start, End time.Time
	WallNs     int64
}

// ReadTrace streams the whole trace out of r, reconstructs the span
// forest, and validates it: every span_start must have exactly one
// matching span_end (same id, same name), and every child must be
// fully contained in its parent — started while the parent is open,
// ended before the parent ends. A violated invariant is an error: it
// means a truncated file or a producer bug, and analytics over it
// would silently misattribute time.
func ReadTrace(r io.Reader) (*Trace, error) {
	return ReadTraceFiltered(r, nil)
}

// RequestFilter keeps only events stamped with the given request_id
// attribute — the per-request slice of a multiplexed serve trace. A
// request's events form a self-contained balanced forest (the serving
// path forks one request_id-stamped tracer per request, and every span
// of a fork parents within the fork), so the filtered trace passes the
// same validation as a whole file.
func RequestFilter(id string) func(*obs.Event) bool {
	return func(e *obs.Event) bool {
		v, ok := e.Attrs["request_id"]
		return ok && fmt.Sprint(v) == id
	}
}

// ReadTraceFiltered is ReadTrace restricted to the events keep accepts
// (nil keeps everything). Filtering happens after schema detection, so
// the version stamp survives even when the filter drops the stamped
// event.
func ReadTraceFiltered(r io.Reader, keep func(*obs.Event) bool) (*Trace, error) {
	rd := NewReader(r)
	t := &Trace{ByID: make(map[int64]*Span)}
	open := make(map[int64]*Span)   // span id -> open span
	openKids := make(map[int64]int) // span id -> currently open children
	for {
		e, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if keep != nil && !keep(e) {
			continue
		}
		t.Events = append(t.Events, *e)
		if t.Start.IsZero() || e.Time.Before(t.Start) {
			t.Start = e.Time
		}
		if e.Time.After(t.End) {
			t.End = e.Time
		}
		switch e.Kind {
		case obs.KindSpanStart:
			if e.Span == 0 {
				return nil, fmt.Errorf("tracean: seq %d: span_start %q without a span id", e.Seq, e.Name)
			}
			if _, dup := t.ByID[e.Span]; dup {
				return nil, fmt.Errorf("tracean: seq %d: duplicate span id %d (%q)", e.Seq, e.Span, e.Name)
			}
			s := &Span{
				Name:       e.Name,
				ID:         e.Span,
				Parent:     e.Parent,
				Start:      e.Time,
				StartSeq:   e.Seq,
				StartAttrs: e.Attrs,
			}
			if e.Parent != 0 {
				p, ok := open[e.Parent]
				if !ok {
					if _, closed := t.ByID[e.Parent]; closed {
						return nil, fmt.Errorf("tracean: seq %d: span %q (id %d) starts inside parent %d, which already ended", e.Seq, e.Name, e.Span, e.Parent)
					}
					return nil, fmt.Errorf("tracean: seq %d: span %q (id %d) references unknown parent %d", e.Seq, e.Name, e.Span, e.Parent)
				}
				p.Children = append(p.Children, s)
				openKids[e.Parent]++
			} else {
				t.Roots = append(t.Roots, s)
			}
			t.ByID[e.Span] = s
			open[e.Span] = s
		case obs.KindSpanEnd:
			s, ok := open[e.Span]
			if !ok {
				return nil, fmt.Errorf("tracean: seq %d: span_end %q (id %d) without a matching span_start", e.Seq, e.Name, e.Span)
			}
			if s.Name != e.Name {
				return nil, fmt.Errorf("tracean: seq %d: span id %d ends as %q but started as %q", e.Seq, e.Span, e.Name, s.Name)
			}
			if openKids[e.Span] != 0 {
				return nil, fmt.Errorf("tracean: seq %d: span %q (id %d) ends with %d child span(s) still open", e.Seq, e.Name, e.Span, openKids[e.Span])
			}
			s.DurNs = e.DurNs
			s.EndSeq = e.Seq
			s.EndAttrs = e.Attrs
			delete(open, e.Span)
			delete(openKids, e.Span)
			if s.Parent != 0 {
				openKids[s.Parent]--
			}
		default:
			// Plain and progress events attach to their parent span when
			// it is open; otherwise they stay trace-level (solver ctrl
			// events are emitted parentless by design).
			if e.Parent != 0 {
				if p, ok := open[e.Parent]; ok {
					p.Events = append(p.Events, *e)
				}
			}
		}
	}
	if len(open) > 0 {
		var first *Span
		for _, s := range open {
			if first == nil || s.StartSeq < first.StartSeq {
				first = s
			}
		}
		return nil, fmt.Errorf("tracean: %d unclosed span(s) at end of trace (first: %q, id %d) — truncated trace?", len(open), first.Name, first.ID)
	}
	t.Schema = rd.Schema()
	if !t.Start.IsZero() {
		t.WallNs = t.End.Sub(t.Start).Nanoseconds()
	}
	for _, root := range t.Roots {
		computeSelf(root)
	}
	return t, nil
}

// computeSelf fills SelfNs bottom-up: a span's duration minus its
// direct children's, clamped at zero (clock jitter can make children
// sum a hair past the parent).
func computeSelf(s *Span) {
	var kids int64
	for _, c := range s.Children {
		computeSelf(c)
		kids += c.DurNs
	}
	s.SelfNs = s.DurNs - kids
	if s.SelfNs < 0 {
		s.SelfNs = 0
	}
}

// Walk visits every span in the forest depth-first in start order.
func (t *Trace) Walk(f func(s *Span, depth int)) {
	var rec func(s *Span, depth int)
	rec = func(s *Span, depth int) {
		f(s, depth)
		for _, c := range s.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		rec(r, 0)
	}
}

// NumSpans counts the spans in the forest.
func (t *Trace) NumSpans() int { return len(t.ByID) }
