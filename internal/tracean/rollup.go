package tracean

import (
	"math"
	"sort"
)

// Rollup aggregates every span sharing a name: how often it ran, how
// much wall-clock it covered (TotalNs), how much of that was its own
// (SelfNs, excluding child spans), and the distribution of individual
// span durations. TotalNs double-counts nested same-name spans (an
// op.project inside another op.project contributes to both); SelfNs
// never does, so self-times across all rollups partition the traced
// time and are the comparable quantity for diffs.
type Rollup struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
	SelfNs  int64  `json:"self_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
}

// Rollups computes the per-name aggregates, ordered by self time
// descending (name ascending on ties) — the "where did the time go"
// table of licmtrace summary.
func (t *Trace) Rollups() []Rollup {
	durs := make(map[string][]int64)
	self := make(map[string]int64)
	t.Walk(func(s *Span, _ int) {
		durs[s.Name] = append(durs[s.Name], s.DurNs)
		self[s.Name] += s.SelfNs
	})
	out := make([]Rollup, 0, len(durs))
	for name, ds := range durs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		r := Rollup{
			Name:   name,
			Count:  len(ds),
			SelfNs: self[name],
			MinNs:  ds[0],
			MaxNs:  ds[len(ds)-1],
			P50Ns:  quantile(ds, 0.50),
			P99Ns:  quantile(ds, 0.99),
		}
		for _, d := range ds {
			r.TotalNs += d
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNs != out[j].SelfNs {
			return out[i].SelfNs > out[j].SelfNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// quantile returns the nearest-rank q-quantile of sorted (exact — the
// reader holds every duration, no sketching needed at trace scale).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// PathStep is one span on the critical path.
type PathStep struct {
	Name   string `json:"name"`
	ID     int64  `json:"id"`
	DurNs  int64  `json:"dur_ns"`
	SelfNs int64  `json:"self_ns"`
}

// CriticalPath descends from the longest root span, at each level
// following the child that consumed the most time — the chain of spans
// an optimization must shorten to shorten the run. Empty on a trace
// with no spans.
func (t *Trace) CriticalPath() []PathStep {
	var cur *Span
	for _, r := range t.Roots {
		if cur == nil || r.DurNs > cur.DurNs {
			cur = r
		}
	}
	var path []PathStep
	for cur != nil {
		path = append(path, PathStep{Name: cur.Name, ID: cur.ID, DurNs: cur.DurNs, SelfNs: cur.SelfNs})
		var next *Span
		for _, c := range cur.Children {
			if next == nil || c.DurNs > next.DurNs {
				next = c
			}
		}
		cur = next
	}
	return path
}
