package tracean

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// FoldedStacks writes the trace in the folded-stack format flamegraph
// tooling consumes (inferno's flamegraph/flamegraph.pl, speedscope):
// one line per distinct span stack,
//
//	root;child;grandchild <weight>
//
// with the weight being the stack's summed self time in nanoseconds.
// Same-named stacks from repeated spans (every bench.cell, every
// op.project) merge into one line, which is exactly the aggregation a
// flamegraph renders as width.
func (t *Trace) FoldedStacks(w io.Writer) error {
	weights := make(map[string]int64)
	var stack []string
	var rec func(s *Span)
	rec = func(s *Span) {
		stack = append(stack, s.Name)
		if s.SelfNs > 0 {
			weights[strings.Join(stack, ";")] += s.SelfNs
		}
		for _, c := range s.Children {
			rec(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, r := range t.Roots {
		rec(r)
	}
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, weights[k]); err != nil {
			return err
		}
	}
	return nil
}
