package tracean

import (
	"math"
	"sort"
)

// DiffOptions tune the regression comparison.
type DiffOptions struct {
	// Threshold is the allowed relative growth of a phase's self time:
	// 0.5 tolerates +50%, failing only when new > old × 1.5. Shrinkage
	// never breaches. <= 0 defaults to 0.5.
	Threshold float64
	// MinNs is the noise floor: a phase whose new self time is below it
	// never breaches, whatever the ratio (microsecond phases triple on
	// scheduler jitter alone). <= 0 defaults to 1ms.
	MinNs int64
}

// DefaultDiffOptions returns the thresholds licmtrace diff uses when
// no flags are given.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{Threshold: 0.5, MinNs: int64(1_000_000)}
}

// PhaseDelta compares one span name across two traces.
type PhaseDelta struct {
	Name      string `json:"name"`
	OldCount  int    `json:"old_count"`
	NewCount  int    `json:"new_count"`
	OldSelfNs int64  `json:"old_self_ns"`
	NewSelfNs int64  `json:"new_self_ns"`
	// Rel is (new-old)/old self time; +Inf for phases the old trace
	// lacks entirely.
	Rel    float64 `json:"rel"`
	Breach bool    `json:"breach"`
}

// DiffReport is the phase-by-phase comparison of two traces.
type DiffReport struct {
	Threshold float64      `json:"threshold"`
	MinNs     int64        `json:"min_ns"`
	Deltas    []PhaseDelta `json:"deltas"`
	Breached  bool         `json:"breached"`
}

// Diff compares the per-phase self-time rollups of two traces. Phases
// are matched by span name; a phase present only in the new trace
// counts as infinite growth (breaching once past the noise floor), a
// phase that disappeared is reported with NewSelfNs 0 and never
// breaches. Deltas are ordered by absolute self-time change,
// largest first.
func Diff(oldT, newT *Trace, opts DiffOptions) DiffReport {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultDiffOptions().Threshold
	}
	if opts.MinNs <= 0 {
		opts.MinNs = DefaultDiffOptions().MinNs
	}
	olds := make(map[string]Rollup)
	for _, r := range oldT.Rollups() {
		olds[r.Name] = r
	}
	news := make(map[string]Rollup)
	for _, r := range newT.Rollups() {
		news[r.Name] = r
	}
	names := make(map[string]bool)
	for n := range olds {
		names[n] = true
	}
	for n := range news {
		names[n] = true
	}
	rep := DiffReport{Threshold: opts.Threshold, MinNs: opts.MinNs}
	for n := range names {
		o, hasOld := olds[n]
		nw := news[n]
		d := PhaseDelta{
			Name:      n,
			OldCount:  o.Count,
			NewCount:  nw.Count,
			OldSelfNs: o.SelfNs,
			NewSelfNs: nw.SelfNs,
		}
		switch {
		case !hasOld || o.SelfNs == 0:
			if nw.SelfNs > 0 {
				d.Rel = math.Inf(1)
			}
		default:
			d.Rel = float64(nw.SelfNs-o.SelfNs) / float64(o.SelfNs)
		}
		if nw.SelfNs >= opts.MinNs && d.Rel > opts.Threshold {
			d.Breach = true
			rep.Breached = true
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	sort.Slice(rep.Deltas, func(i, j int) bool {
		ai := abs64(rep.Deltas[i].NewSelfNs - rep.Deltas[i].OldSelfNs)
		aj := abs64(rep.Deltas[j].NewSelfNs - rep.Deltas[j].OldSelfNs)
		if ai != aj {
			return ai > aj
		}
		return rep.Deltas[i].Name < rep.Deltas[j].Name
	})
	return rep
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
