package tracean

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestReaderSchemaStamp(t *testing.T) {
	const trace = `{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"a","schema":"1.0","span":1}
{"seq":2,"time":"2026-01-02T03:04:06Z","ev":"span_end","name":"a","span":1,"dur_ns":1000000000}
`
	r := NewReader(strings.NewReader(trace))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if got := r.Schema(); got != "1.0" {
		t.Errorf("Schema() = %q, want 1.0", got)
	}
}

func TestReaderAcceptsUnversionedAndMinorBumps(t *testing.T) {
	for _, schema := range []string{"", "1.7"} {
		line := `{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"event","name":"x"`
		if schema != "" {
			line += fmt.Sprintf(`,"schema":%q`, schema)
		}
		line += "}\n"
		r := NewReader(strings.NewReader(line))
		if _, err := r.Next(); err != nil {
			t.Errorf("schema %q rejected: %v", schema, err)
		}
	}
}

func TestReaderRejectsUnknownMajor(t *testing.T) {
	const trace = `{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"event","name":"x","schema":"2.0"}` + "\n"
	r := NewReader(strings.NewReader(trace))
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "unsupported trace schema") {
		t.Fatalf("err = %v, want unsupported-schema error", err)
	}
	// The error is terminal.
	if _, err2 := r.Next(); err2 != err {
		t.Errorf("second Next() = %v, want the latched error", err2)
	}
}

func TestReaderMalformedLineIsTerminal(t *testing.T) {
	r := NewReader(strings.NewReader("{not json}\n"))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want parse error", err)
	}
}

func TestReaderSkipsBlankLinesAndNormalizesInts(t *testing.T) {
	const trace = "\n" + `{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"event","name":"x","attrs":{"n":42,"f":1.5,"s":"v"}}` + "\n\n"
	r := NewReader(strings.NewReader(trace))
	e, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Attrs["n"].(int64); !ok || v != 42 {
		t.Errorf("integral attr n = %#v, want int64(42)", e.Attrs["n"])
	}
	if v, ok := e.Attrs["f"].(float64); !ok || v != 1.5 {
		t.Errorf("fractional attr f = %#v, want float64(1.5)", e.Attrs["f"])
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last line Next() = %v, want io.EOF", err)
	}
}

// lines joins trace lines for ReadTrace validation tests.
func lines(ls ...string) io.Reader { return strings.NewReader(strings.Join(ls, "\n") + "\n") }

func TestReadTraceValidation(t *testing.T) {
	cases := []struct {
		name    string
		trace   io.Reader
		wantErr string
	}{
		{
			"unclosed span",
			lines(`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"a","span":1}`),
			"unclosed span",
		},
		{
			"end without start",
			lines(`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_end","name":"a","span":1,"dur_ns":5}`),
			"without a matching span_start",
		},
		{
			"duplicate id",
			lines(
				`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"a","span":1}`,
				`{"seq":2,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"b","span":1}`,
			),
			"duplicate span id",
		},
		{
			"unknown parent",
			lines(`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"a","span":2,"parent":9}`),
			"unknown parent",
		},
		{
			"child outlives parent",
			lines(
				`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"p","span":1}`,
				`{"seq":2,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"c","span":2,"parent":1}`,
				`{"seq":3,"time":"2026-01-02T03:04:06Z","ev":"span_end","name":"p","span":1,"dur_ns":5}`,
			),
			"still open",
		},
		{
			"start inside ended parent",
			lines(
				`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"p","span":1}`,
				`{"seq":2,"time":"2026-01-02T03:04:06Z","ev":"span_end","name":"p","span":1,"dur_ns":5}`,
				`{"seq":3,"time":"2026-01-02T03:04:07Z","ev":"span_start","name":"c","span":2,"parent":1}`,
			),
			"already ended",
		},
		{
			"name mismatch",
			lines(
				`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"a","span":1}`,
				`{"seq":2,"time":"2026-01-02T03:04:06Z","ev":"span_end","name":"b","span":1,"dur_ns":5}`,
			),
			"started as",
		},
		{
			"start without id",
			lines(`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"a"}`),
			"without a span id",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(tc.trace)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadTraceForest(t *testing.T) {
	tr, err := ReadTrace(lines(
		`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"root","span":1,"schema":"1.0"}`,
		`{"seq":2,"time":"2026-01-02T03:04:05.1Z","ev":"span_start","name":"kid","span":2,"parent":1}`,
		`{"seq":3,"time":"2026-01-02T03:04:05.2Z","ev":"event","name":"tick","parent":2,"attrs":{"n":1}}`,
		`{"seq":4,"time":"2026-01-02T03:04:05.4Z","ev":"span_end","name":"kid","span":2,"parent":1,"dur_ns":300000000}`,
		`{"seq":5,"time":"2026-01-02T03:04:06Z","ev":"span_end","name":"root","span":1,"dur_ns":1000000000}`,
		`{"seq":6,"time":"2026-01-02T03:04:06Z","ev":"event","name":"loose"}`,
	))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema != "1.0" {
		t.Errorf("Schema = %q", tr.Schema)
	}
	if len(tr.Roots) != 1 || tr.NumSpans() != 2 {
		t.Fatalf("roots %d spans %d, want 1 and 2", len(tr.Roots), tr.NumSpans())
	}
	root := tr.Roots[0]
	if root.SelfNs != 700000000 {
		t.Errorf("root self = %d, want 700ms", root.SelfNs)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "kid" {
		t.Fatalf("root children = %+v", root.Children)
	}
	if kid := root.Children[0]; len(kid.Events) != 1 || kid.Events[0].Name != "tick" {
		t.Errorf("kid events = %+v", kid.Events)
	}
	if tr.WallNs != 1000000000 {
		t.Errorf("WallNs = %d, want 1s", tr.WallNs)
	}
	// Walk order and depth.
	var visited []string
	tr.Walk(func(s *Span, depth int) { visited = append(visited, fmt.Sprintf("%s@%d", s.Name, depth)) })
	if got := strings.Join(visited, " "); got != "root@0 kid@1" {
		t.Errorf("walk order = %q", got)
	}
}

// TestReadTraceFilteredByRequest: a multiplexed serve trace slices
// into per-request forests that still pass full validation, because
// every request's fork parents its spans within the fork.
func TestReadTraceFilteredByRequest(t *testing.T) {
	const trace = `{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"serve.request","span":1,"attrs":{"request_id":"r1"}}
{"seq":2,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"serve.request","span":2,"attrs":{"request_id":"r2"}}
{"seq":3,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"super.solve","span":3,"parent":1,"attrs":{"request_id":"r1"}}
{"seq":4,"time":"2026-01-02T03:04:06Z","ev":"span_end","name":"super.solve","span":3,"parent":1,"dur_ns":5,"attrs":{"request_id":"r1"}}
{"seq":5,"time":"2026-01-02T03:04:06Z","ev":"span_end","name":"serve.request","span":2,"dur_ns":9,"attrs":{"request_id":"r2"}}
{"seq":6,"time":"2026-01-02T03:04:06Z","ev":"span_end","name":"serve.request","span":1,"dur_ns":10,"attrs":{"request_id":"r1"}}
`
	tr, err := ReadTraceFiltered(strings.NewReader(trace), RequestFilter("r1"))
	if err != nil {
		t.Fatalf("filtered read: %v", err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("kept %d events, want 4", len(tr.Events))
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "serve.request" {
		t.Fatalf("roots = %+v, want one serve.request", tr.Roots)
	}
	if len(tr.Roots[0].Children) != 1 || tr.Roots[0].Children[0].Name != "super.solve" {
		t.Fatalf("children = %+v, want one super.solve", tr.Roots[0].Children)
	}

	// An unknown id keeps nothing but still reads cleanly.
	tr, err = ReadTraceFiltered(strings.NewReader(trace), RequestFilter("absent"))
	if err != nil {
		t.Fatalf("empty filter: %v", err)
	}
	if len(tr.Events) != 0 || len(tr.Roots) != 0 {
		t.Fatalf("absent id kept %d events, %d roots", len(tr.Events), len(tr.Roots))
	}
}
