package tracean_test

import (
	"bytes"
	"testing"
	"time"

	"licm/internal/expr"
	"licm/internal/obs"
	"licm/internal/solver"
	"licm/internal/tracean"
)

// liveProblem mirrors the solver obs tests: a knapsack component with
// enough equally-attractive variables to force a real search tree.
func liveProblem() *solver.Problem {
	const big = 40
	vars := func(start, n int) []expr.Var {
		vs := make([]expr.Var, n)
		for i := range vs {
			vs[i] = expr.Var(start + i)
		}
		return vs
	}
	var cons []expr.Constraint
	cons = append(cons, expr.NewConstraint(expr.Sum(vars(0, big)...), expr.LE, 20))
	obj := expr.Lin{}
	for v := 0; v < big; v++ {
		obj = obj.AddTerm(expr.Var(v), 1)
	}
	n := big
	for g := 0; g < 4; g++ {
		vs := vars(n, 5)
		n += 5
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.GE, 1))
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.LE, 3))
		for _, v := range vs {
			obj = obj.AddTerm(v, int64(2+g))
		}
	}
	return &solver.Problem{NumVars: n, Constraints: cons, Objective: obj}
}

// TestLiveSolveRoundTrip is the end-to-end contract of the read side:
// a real instrumented solve, serialized through the JSONL sink and
// parsed back by tracean, must reconstruct a valid span forest whose
// per-phase rollups agree with the solver's own Stats clocks.
func TestLiveSolveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	reg := obs.NewRegistry()
	opts := solver.DefaultOptions()
	opts.MaxNodes = 50_000
	opts.Trace = obs.New(sink)
	opts.Metrics = reg
	res, err := solver.Maximize(liveProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	// ReadTrace validates start/end balance and parent containment; a
	// producer bug fails here without any further assertions.
	tr, err := tracean.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema != obs.SchemaVersion {
		t.Errorf("trace schema = %q, want %q", tr.Schema, obs.SchemaVersion)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "solver.solve" {
		t.Fatalf("roots = %+v, want a single solver.solve", tr.Roots)
	}

	rollups := map[string]tracean.Rollup{}
	for _, r := range tr.Rollups() {
		rollups[r.Name] = r
	}
	// Each phase span measures the same interval Stats clocks, so the
	// rollup totals must agree within scheduling tolerance.
	tol := func(want time.Duration) int64 {
		return int64(10*time.Millisecond) + want.Nanoseconds()/10
	}
	for _, tc := range []struct {
		phase string
		stat  time.Duration
	}{
		{"solver.solve", res.Stats.TotalTime},
		{"solver.prune", res.Stats.PruneTime},
		{"solver.presolve", res.Stats.PresolveTime},
		{"solver.search", res.Stats.SearchTime},
	} {
		r, ok := rollups[tc.phase]
		if !ok {
			t.Errorf("no rollup for %s", tc.phase)
			continue
		}
		if diff := r.TotalNs - tc.stat.Nanoseconds(); diff > tol(tc.stat) || diff < -tol(tc.stat) {
			t.Errorf("%s rollup total %v vs stats %v (diff %v)",
				tc.phase, time.Duration(r.TotalNs), tc.stat, time.Duration(diff))
		}
	}

	// The solver.hist events carry the latency histograms with counts
	// matching the registry snapshots.
	lp := reg.Histogram("solver.lp_ns").Snapshot()
	if lp.Count == 0 {
		t.Fatal("solver.lp_ns histogram empty on an LP-enabled solve")
	}
	var histNames []string
	for _, e := range tr.Events {
		if e.Kind == obs.KindEvent && e.Name == "solver.hist" {
			name, _ := e.Attrs["hist"].(string)
			histNames = append(histNames, name)
			if name == "solver.lp_ns" {
				if got, _ := e.Attrs["count"].(int64); got != lp.Count {
					t.Errorf("solver.hist count attr = %d, registry %d", got, lp.Count)
				}
			}
		}
	}
	if len(histNames) == 0 {
		t.Error("no solver.hist events in trace")
	}

	// Self times partition the root duration (within clamp rounding).
	var self int64
	for _, r := range tr.Rollups() {
		self += r.SelfNs
	}
	root := tr.Roots[0].DurNs
	if self > root {
		t.Errorf("self times sum %v exceed root %v", time.Duration(self), time.Duration(root))
	}
}
