package tracean

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// synth builds a trace in memory: root(100ms) with two a-children
// (30ms, 10ms) and one b-child (20ms).
func synth(t *testing.T) *Trace {
	t.Helper()
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(ms int) string { return base.Add(time.Duration(ms) * time.Millisecond).Format(time.RFC3339Nano) }
	tr, err := ReadTrace(lines(
		`{"seq":1,"time":"`+at(0)+`","ev":"span_start","name":"root","span":1}`,
		`{"seq":2,"time":"`+at(0)+`","ev":"span_start","name":"a","span":2,"parent":1}`,
		`{"seq":3,"time":"`+at(30)+`","ev":"span_end","name":"a","span":2,"parent":1,"dur_ns":30000000}`,
		`{"seq":4,"time":"`+at(30)+`","ev":"span_start","name":"a","span":3,"parent":1}`,
		`{"seq":5,"time":"`+at(40)+`","ev":"span_end","name":"a","span":3,"parent":1,"dur_ns":10000000}`,
		`{"seq":6,"time":"`+at(40)+`","ev":"span_start","name":"b","span":4,"parent":1}`,
		`{"seq":7,"time":"`+at(60)+`","ev":"span_end","name":"b","span":4,"parent":1,"dur_ns":20000000}`,
		`{"seq":8,"time":"`+at(100)+`","ev":"span_end","name":"root","span":1,"dur_ns":100000000}`,
	))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRollups(t *testing.T) {
	rs := synth(t).Rollups()
	if len(rs) != 3 {
		t.Fatalf("got %d rollups: %+v", len(rs), rs)
	}
	// Ordered by self time desc: a (40ms), root (40ms self) — tie broken
	// by name — then b (20ms).
	byName := map[string]Rollup{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	a := byName["a"]
	if a.Count != 2 || a.TotalNs != 40000000 || a.SelfNs != 40000000 {
		t.Errorf("a rollup = %+v", a)
	}
	if a.MinNs != 10000000 || a.MaxNs != 30000000 || a.P50Ns != 10000000 || a.P99Ns != 30000000 {
		t.Errorf("a distribution = %+v", a)
	}
	root := byName["root"]
	if root.SelfNs != 40000000 {
		t.Errorf("root self = %d, want 40ms", root.SelfNs)
	}
	// Self times partition the root duration.
	var self int64
	for _, r := range rs {
		self += r.SelfNs
	}
	if self != 100000000 {
		t.Errorf("self times sum to %d, want root's 100ms", self)
	}
	if rs[0].Name != "a" || rs[1].Name != "root" || rs[2].Name != "b" {
		t.Errorf("order = %s,%s,%s", rs[0].Name, rs[1].Name, rs[2].Name)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 50}, {0.99, 100}, {0.01, 10}, {1, 100}} {
		if got := quantile(sorted, tc.q); got != tc.want {
			t.Errorf("quantile(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %d", got)
	}
}

func TestCriticalPath(t *testing.T) {
	path := synth(t).CriticalPath()
	if len(path) != 2 {
		t.Fatalf("path = %+v", path)
	}
	if path[0].Name != "root" || path[1].Name != "a" || path[1].DurNs != 30000000 {
		t.Errorf("path = %+v", path)
	}
	var empty Trace
	if p := empty.CriticalPath(); p != nil {
		t.Errorf("empty trace path = %+v", p)
	}
}

func TestFoldedStacks(t *testing.T) {
	var buf bytes.Buffer
	if err := synth(t).FoldedStacks(&buf); err != nil {
		t.Fatal(err)
	}
	want := "root 40000000\nroot;a 40000000\nroot;b 20000000\n"
	if buf.String() != want {
		t.Errorf("folded stacks:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestDiffCleanOnIdentical(t *testing.T) {
	tr := synth(t)
	rep := Diff(tr, tr, DiffOptions{})
	if rep.Breached {
		t.Fatalf("identical traces breached: %+v", rep)
	}
	for _, d := range rep.Deltas {
		if d.Rel != 0 || d.Breach {
			t.Errorf("delta %+v on identical traces", d)
		}
	}
}

func TestDiffDetectsGrowthAndNewPhases(t *testing.T) {
	oldT := synth(t)
	newT, err := ReadTrace(lines(
		`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"root","span":1}`,
		`{"seq":2,"time":"2026-01-02T03:04:05.1Z","ev":"span_start","name":"a","span":2,"parent":1}`,
		`{"seq":3,"time":"2026-01-02T03:04:05.2Z","ev":"span_end","name":"a","span":2,"parent":1,"dur_ns":90000000}`,
		`{"seq":4,"time":"2026-01-02T03:04:05.3Z","ev":"span_start","name":"c","span":3,"parent":1}`,
		`{"seq":5,"time":"2026-01-02T03:04:05.4Z","ev":"span_end","name":"c","span":3,"parent":1,"dur_ns":5000000}`,
		`{"seq":6,"time":"2026-01-02T03:04:05.5Z","ev":"span_end","name":"root","span":1,"dur_ns":100000000}`,
	))
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(oldT, newT, DiffOptions{})
	if !rep.Breached {
		t.Fatal("90ms vs 40ms 'a' did not breach")
	}
	byName := map[string]PhaseDelta{}
	for _, d := range rep.Deltas {
		byName[d.Name] = d
	}
	if d := byName["a"]; !d.Breach || math.Abs(d.Rel-1.25) > 1e-9 {
		t.Errorf("a delta = %+v, want breach at +125%%", d)
	}
	// c is new: infinite growth, above the 1ms floor -> breach.
	if d := byName["c"]; !d.Breach || !math.IsInf(d.Rel, 1) {
		t.Errorf("c delta = %+v, want +Inf breach", d)
	}
	// b disappeared: never a breach.
	if d := byName["b"]; d.Breach || d.NewSelfNs != 0 {
		t.Errorf("b delta = %+v", d)
	}
}

func TestDiffNoiseFloorSuppressesTinyPhases(t *testing.T) {
	oldT, err := ReadTrace(lines(
		`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"x","span":1}`,
		`{"seq":2,"time":"2026-01-02T03:04:05.001Z","ev":"span_end","name":"x","span":1,"dur_ns":1000}`,
	))
	if err != nil {
		t.Fatal(err)
	}
	newT, err := ReadTrace(lines(
		`{"seq":1,"time":"2026-01-02T03:04:05Z","ev":"span_start","name":"x","span":1}`,
		`{"seq":2,"time":"2026-01-02T03:04:05.001Z","ev":"span_end","name":"x","span":1,"dur_ns":900000}`,
	))
	if err != nil {
		t.Fatal(err)
	}
	// x grew 900x but stays under the default 1ms floor.
	if rep := Diff(oldT, newT, DiffOptions{}); rep.Breached {
		t.Errorf("sub-floor growth breached: %+v", rep)
	}
}

func TestCheckSchema(t *testing.T) {
	for _, ok := range []string{"1", "1.0", "1.9"} {
		if err := checkSchema(ok); err != nil {
			t.Errorf("checkSchema(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"2", "2.0", "0.9", "x"} {
		if err := checkSchema(bad); err == nil {
			t.Errorf("checkSchema(%q) accepted", bad)
		}
	}
}
