// Package tracean is the read side of the observability layer: it
// consumes the JSON-lines traces that internal/obs produces (schema in
// OBSERVABILITY.md) and turns them into reports.
//
// A raw trace is a flat stream of span_start/span_end pairs and plain
// events; tracean reconstructs the span forest, validating that every
// pair balances and that children are properly contained in their
// parents, then computes the derived views the paper's evaluation is
// built on — per-phase rollups with self-time and latency quantiles
// (the L-model/L-query/L-solve split of Figure 6), the critical path
// of a run, folded stacks for flamegraph tooling, and phase-by-phase
// diffs between two runs with regression thresholds. cmd/licmtrace is
// the CLI over this package; internal/bench snapshots reuse its diff
// conventions for tracked benchmark artifacts.
package tracean

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"licm/internal/obs"
)

// supportedSchemaMajor is the trace schema major version this reader
// understands. obs.SchemaVersion's major must match; minor revisions
// are additive and ignored.
const supportedSchemaMajor = "1"

// Reader streams events out of a JSON-lines trace. It validates the
// schema version stamp as it appears (obs stamps the first event) and
// rejects majors it does not understand instead of mis-parsing them.
type Reader struct {
	sc     *bufio.Scanner
	line   int
	schema string
	err    error
}

// NewReader returns a streaming reader over r. Lines may be up to
// 16 MiB (operator spans on large stores carry sizeable attr maps).
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Schema returns the schema version stamped on the trace, or "" when
// no event carried one (pre-versioning traces, which are accepted).
func (r *Reader) Schema() string { return r.schema }

// Next returns the next event, or io.EOF at the end of the trace. A
// malformed line or an unsupported schema version is a terminal error.
func (r *Reader) Next() (*obs.Event, error) {
	if r.err != nil {
		return nil, r.err
	}
	for r.sc.Scan() {
		r.line++
		raw := strings.TrimSpace(r.sc.Text())
		if raw == "" {
			continue
		}
		e := new(obs.Event)
		if err := json.Unmarshal([]byte(raw), e); err != nil {
			r.err = fmt.Errorf("tracean: line %d: %w", r.line, err)
			return nil, r.err
		}
		if e.Schema != "" {
			if err := checkSchema(e.Schema); err != nil {
				r.err = fmt.Errorf("tracean: line %d: %w", r.line, err)
				return nil, r.err
			}
			r.schema = e.Schema
		}
		normalizeAttrs(e.Attrs)
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = fmt.Errorf("tracean: line %d: %w", r.line, err)
		return nil, r.err
	}
	r.err = io.EOF
	return nil, io.EOF
}

// normalizeAttrs undoes JSON's number erasure: attr values the
// producer emitted as integers (counts, ns durations) come back from
// encoding/json as float64; integral values in the exact range are
// restored to int64 so filters and re-printed traces match what a live
// sink would have shown.
func normalizeAttrs(attrs map[string]any) {
	for k, v := range attrs {
		if f, ok := v.(float64); ok {
			if i, exact := integralFloat(f); exact {
				attrs[k] = i
			}
		}
	}
}

// checkSchema accepts "major" or "major.minor" version stamps whose
// major is supported.
func checkSchema(v string) error {
	major, _, _ := strings.Cut(v, ".")
	if major != supportedSchemaMajor {
		return fmt.Errorf("unsupported trace schema %q (this reader understands %s.x; re-run the producer or upgrade licmtrace)", v, supportedSchemaMajor)
	}
	return nil
}
