// Package queries implements the three aggregate queries of the
// paper's evaluation (Section V-B) twice: once as LICM pipelines over
// an encoded possibilistic database (producing a result relation whose
// COUNT(*) objective the solver bounds), and once as deterministic
// evaluations over a concrete world (used by the Monte-Carlo baseline
// and by tests as ground truth).
//
//	Query 1: count Pa-transactions containing at least one Pb item
//	         (Pa a location predicate, Pb a price predicate).
//	Query 2: count Pa-transactions containing >= X Pb items AND
//	         >= Y Pc items (two count predicates + intersection).
//	Query 3: count Pa-transactions containing at least one item that
//	         appears in >= X Pb-transactions (count predicate + join).
package queries

import (
	"fmt"
	"math"

	"licm/internal/core"
	"licm/internal/encode"
	"licm/internal/engine"
)

// Pred is an inclusive integer range predicate over an attribute.
type Pred struct {
	Lo, Hi int64
}

// Match reports whether v falls in the range.
func (p Pred) Match(v int64) bool { return v >= p.Lo && v <= p.Hi }

// Width returns the number of values the predicate admits.
func (p Pred) Width() int64 {
	if p.Hi < p.Lo {
		return 0
	}
	return p.Hi - p.Lo + 1
}

// String renders the predicate.
func (p Pred) String() string { return fmt.Sprintf("[%d,%d]", p.Lo, p.Hi) }

// RangeWithSelectivity builds a predicate over a uniform domain
// [0, domain) admitting approximately frac of the values, starting at
// offset (wrapped into the domain).
func RangeWithSelectivity(domain int64, frac float64, offset int64) Pred {
	w := int64(math.Ceil(frac * float64(domain)))
	if w < 1 {
		w = 1
	}
	if w > domain {
		w = domain
	}
	lo := offset % domain
	if lo < 0 {
		lo += domain
	}
	hi := lo + w - 1
	if hi >= domain {
		lo, hi = domain-w, domain-1
	}
	return Pred{Lo: lo, Hi: hi}
}

// World is one concrete (deterministic) possible world, in the role
// the paper's SQL Server plays for the MC baseline.
type World struct {
	Trans     *engine.Table // TID, Location
	TransItem *engine.Table // TID, Item
	Items     *engine.Table // Item, Price
}

// Query is one of the paper's evaluation queries; implementations are
// Q1, Q2, Q3.
type Query interface {
	// Name returns "Q1", "Q2" or "Q3".
	Name() string
	// BuildLICM translates the query over the encoded database,
	// growing its constraint store, and returns the result relation
	// whose COUNT(*) is the aggregate of interest.
	BuildLICM(enc *encode.Encoded) (*core.Relation, error)
	// Eval answers the query exactly on one concrete world.
	Eval(w *World) int64
}

// locSet returns the TIDs whose (certain) location matches p.
func locSet(trans *core.Relation, p Pred) map[int64]bool {
	out := make(map[int64]bool)
	for i := 0; i < trans.Len(); i++ {
		row := trans.RowAt(i)
		if p.Match(row.Int("Location")) {
			out[row.Int("TID")] = true
		}
	}
	return out
}

// priceSet returns the item ids whose (certain) price matches p.
func priceSet(items *core.Relation, p Pred) map[int64]bool {
	out := make(map[int64]bool)
	for i := 0; i < items.Len(); i++ {
		row := items.RowAt(i)
		if p.Match(row.Int("Price")) {
			out[row.Int("Item")] = true
		}
	}
	return out
}

// transItemFor returns the possibilistic TransItem relation restricted
// to the given TID/item sets, deriving it through the group join for
// bipartite encodings.
func transItemFor(enc *encode.Encoded, tids, items map[int64]bool) *core.Relation {
	if enc.TransItem != nil {
		r := enc.TransItem
		if tids != nil {
			r = core.Select(r, func(row core.Row) bool { return tids[row.Int("TID")] })
		}
		if items != nil {
			r = core.Select(r, func(row core.Row) bool { return items[row.Int("Item")] })
		}
		return r
	}
	return enc.BuildTransItem(tids, items)
}

// Q1 is Query 1: COUNT of Pa-transactions with at least one Pb item.
type Q1 struct {
	Pa Pred // location
	Pb Pred // price
}

// Name implements Query.
func (q Q1) Name() string { return "Q1" }

// BuildLICM implements Query: σ_loc, σ_price, then π_TID; the count of
// the projection is the answer.
func (q Q1) BuildLICM(enc *encode.Encoded) (*core.Relation, error) {
	pa := locSet(enc.Trans, q.Pa)
	pb := priceSet(enc.Items, q.Pb)
	ti := transItemFor(enc, pa, pb)
	return core.Project(enc.DB, ti, "TID"), nil
}

// Eval implements Query.
func (q Q1) Eval(w *World) int64 {
	pa := evalLocSet(w, q.Pa)
	pb := evalPriceSet(w, q.Pb)
	sel := w.TransItem.Select(func(r engine.Row) bool {
		return pa[r.Int("TID")] && pb[r.Int("Item")]
	})
	return sel.Project("TID").Count()
}

// Q2 is Query 2: COUNT of Pa-transactions with >= X Pb items and
// >= Y Pc items.
type Q2 struct {
	Pa     Pred // location
	Pb, Pc Pred // price
	X, Y   int
}

// Name implements Query.
func (q Q2) Name() string { return "Q2" }

// BuildLICM implements Query: two count predicates (Algorithm 4) and
// an intersection (Algorithm 2).
func (q Q2) BuildLICM(enc *encode.Encoded) (*core.Relation, error) {
	pa := locSet(enc.Trans, q.Pa)
	pb := priceSet(enc.Items, q.Pb)
	pc := priceSet(enc.Items, q.Pc)
	either := make(map[int64]bool, len(pb)+len(pc))
	for it := range pb {
		either[it] = true
	}
	for it := range pc {
		either[it] = true
	}
	ti := transItemFor(enc, pa, either)
	rb := core.Select(ti, func(r core.Row) bool { return pb[r.Int("Item")] })
	rc := core.Select(ti, func(r core.Row) bool { return pc[r.Int("Item")] })
	cb := core.CountPredicate(enc.DB, rb, []string{"TID"}, core.CountGE, q.X)
	cc := core.CountPredicate(enc.DB, rc, []string{"TID"}, core.CountGE, q.Y)
	return core.Intersect(enc.DB, cb, cc)
}

// Eval implements Query.
func (q Q2) Eval(w *World) int64 {
	pa := evalLocSet(w, q.Pa)
	pb := evalPriceSet(w, q.Pb)
	pc := evalPriceSet(w, q.Pc)
	countB := make(map[int64]map[int64]bool)
	countC := make(map[int64]map[int64]bool)
	for i := 0; i < w.TransItem.Len(); i++ {
		r := w.TransItem.RowAt(i)
		tid, it := r.Int("TID"), r.Int("Item")
		if !pa[tid] {
			continue
		}
		if pb[it] {
			if countB[tid] == nil {
				countB[tid] = make(map[int64]bool)
			}
			countB[tid][it] = true
		}
		if pc[it] {
			if countC[tid] == nil {
				countC[tid] = make(map[int64]bool)
			}
			countC[tid][it] = true
		}
	}
	var n int64
	for tid, bs := range countB {
		if len(bs) >= q.X && len(countC[tid]) >= q.Y {
			n++
		}
	}
	return n
}

// Q3 is Query 3: COUNT of Pa-transactions containing at least one
// item that appears in >= X Pb-transactions.
type Q3 struct {
	Pa, Pb Pred // both location predicates
	X      int
}

// Name implements Query.
func (q Q3) Name() string { return "Q3" }

// BuildLICM implements Query: a count predicate over items within the
// Pb transactions, a join back to the Pa transactions, then π_TID.
func (q Q3) BuildLICM(enc *encode.Encoded) (*core.Relation, error) {
	pa := locSet(enc.Trans, q.Pa)
	pb := locSet(enc.Trans, q.Pb)
	both := make(map[int64]bool, len(pa)+len(pb))
	for t := range pa {
		both[t] = true
	}
	for t := range pb {
		both[t] = true
	}
	ti := transItemFor(enc, both, nil)
	tiPb := core.Select(ti, func(r core.Row) bool { return pb[r.Int("TID")] })
	popular := core.CountPredicate(enc.DB, tiPb, []string{"Item"}, core.CountGE, q.X)
	tiPa := core.Select(ti, func(r core.Row) bool { return pa[r.Int("TID")] })
	joined := core.Join(enc.DB, tiPa, popular, "Item")
	return core.Project(enc.DB, joined, "TID"), nil
}

// Eval implements Query.
func (q Q3) Eval(w *World) int64 {
	pa := evalLocSet(w, q.Pa)
	pb := evalLocSet(w, q.Pb)
	inPb := make(map[int64]map[int64]bool) // item -> pb transactions containing it
	for i := 0; i < w.TransItem.Len(); i++ {
		r := w.TransItem.RowAt(i)
		tid, it := r.Int("TID"), r.Int("Item")
		if !pb[tid] {
			continue
		}
		if inPb[it] == nil {
			inPb[it] = make(map[int64]bool)
		}
		inPb[it][tid] = true
	}
	popular := make(map[int64]bool)
	for it, ts := range inPb {
		if len(ts) >= q.X {
			popular[it] = true
		}
	}
	hit := make(map[int64]bool)
	for i := 0; i < w.TransItem.Len(); i++ {
		r := w.TransItem.RowAt(i)
		tid, it := r.Int("TID"), r.Int("Item")
		if pa[tid] && popular[it] {
			hit[tid] = true
		}
	}
	return int64(len(hit))
}

func evalLocSet(w *World, p Pred) map[int64]bool {
	out := make(map[int64]bool)
	for i := 0; i < w.Trans.Len(); i++ {
		r := w.Trans.RowAt(i)
		if p.Match(r.Int("Location")) {
			out[r.Int("TID")] = true
		}
	}
	return out
}

func evalPriceSet(w *World, p Pred) map[int64]bool {
	out := make(map[int64]bool)
	for i := 0; i < w.Items.Len(); i++ {
		r := w.Items.RowAt(i)
		if p.Match(r.Int("Price")) {
			out[r.Int("Item")] = true
		}
	}
	return out
}

// PaperQ1 builds Query 1 with the paper's selectivities: Pa 0.5% of
// the location domain, Pb 25% of the price domain.
func PaperQ1(locationRange, priceRange int64) Q1 {
	return Q1{
		Pa: RangeWithSelectivity(locationRange, 0.005, 0),
		Pb: RangeWithSelectivity(priceRange, 0.25, 0),
	}
}

// PaperQ2 builds Query 2 with the paper's parameters: X=4, Y=2,
// selectivities 0.5% / 25% / 25% (Pc offset so it differs from Pb).
func PaperQ2(locationRange, priceRange int64) Q2 {
	return Q2{
		Pa: RangeWithSelectivity(locationRange, 0.005, 0),
		Pb: RangeWithSelectivity(priceRange, 0.25, 0),
		Pc: RangeWithSelectivity(priceRange, 0.25, priceRange/2),
		X:  4,
		Y:  2,
	}
}

// PaperQ3 builds Query 3 with configurable selectivity (the paper
// uses 0.3% for both predicates at 515K transactions) and a
// popularity threshold X scaled to the dataset (the paper uses X=80).
// Reduced-scale runs raise frac so the Pb window still contains
// enough transactions for items to clear the threshold.
func PaperQ3(locationRange int64, frac float64, x int) Q3 {
	return Q3{
		Pa: RangeWithSelectivity(locationRange, frac, 0),
		Pb: RangeWithSelectivity(locationRange, frac, locationRange/3),
		X:  x,
	}
}
