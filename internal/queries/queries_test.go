package queries_test

// End-to-end oracle tests: for tiny datasets under each anonymization
// scheme, the exact LICM bounds of Query 1/2/3 must equal the min/max
// of the deterministic answer over ALL possible worlds.

import (
	"testing"

	"licm/internal/anon"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/encode"
	"licm/internal/hierarchy"
	"licm/internal/mc"
	"licm/internal/queries"
	"licm/internal/solver"
)

func tinyData() (*dataset.Dataset, *hierarchy.Hierarchy) {
	d := &dataset.Dataset{}
	prices := []int64{1, 9, 2, 8, 3, 7, 4, 6}
	for i := 0; i < 8; i++ {
		d.Items = append(d.Items, dataset.Item{ID: int32(i), Name: "it", Price: prices[i]})
	}
	d.Trans = []dataset.Transaction{
		{ID: 0, Location: 1, Items: []int32{0, 4}},
		{ID: 1, Location: 1, Items: []int32{1, 4}},
		{ID: 2, Location: 2, Items: []int32{2, 5}},
		{ID: 3, Location: 2, Items: []int32{3, 5}},
	}
	h, err := hierarchy.Build(8, 2, nil)
	if err != nil {
		panic(err)
	}
	return d, h
}

// encodings builds the three encodings of the tiny dataset.
func encodings(t *testing.T) map[string]*encode.Encoded {
	t.Helper()
	d, h := tinyData()
	out := map[string]*encode.Encoded{}
	gk, err := anon.KAnonymize(d, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["k-anon"] = encode.Generalized(gk, d.Items)
	gm, err := anon.KmAnonymize(d, h, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["km-anon"] = encode.Generalized(gm, d.Items)
	bg, err := anon.BipartiteAnonymize(d, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["bipartite"] = encode.Bipartite(d, bg)
	sp, err := anon.SuppressAnonymize(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["suppress"] = encode.Suppressed(sp, d.Items)
	return out
}

// testQueries are small-parameter versions of the paper's queries
// matched to the tiny domain.
func testQueries() []queries.Query {
	return []queries.Query{
		queries.Q1{Pa: queries.Pred{Lo: 1, Hi: 1}, Pb: queries.Pred{Lo: 5, Hi: 9}},
		queries.Q2{Pa: queries.Pred{Lo: 1, Hi: 2}, Pb: queries.Pred{Lo: 5, Hi: 9}, Pc: queries.Pred{Lo: 1, Hi: 4}, X: 1, Y: 1},
		queries.Q3{Pa: queries.Pred{Lo: 1, Hi: 1}, Pb: queries.Pred{Lo: 1, Hi: 2}, X: 2},
	}
}

func TestBoundsMatchExhaustiveWorlds(t *testing.T) {
	for name, enc := range encodings(t) {
		for _, q := range testQueries() {
			// Fresh encoding per (scheme, query) pair: BuildLICM grows
			// the constraint store.
			encs := encodings(t)
			e := encs[name]
			rel, err := q.BuildLICM(e)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, q.Name(), err)
			}
			res, err := core.CountBounds(e.DB, rel, solver.DefaultOptions())
			if err != nil {
				t.Fatalf("%s/%s: bounds: %v", name, q.Name(), err)
			}
			wantMin, wantMax := int64(1<<62), int64(-1<<62)
			worlds := 0
			err = mc.Enumerate(enc, 100000, func(s *mc.Sampler) {
				if !s.Valid() {
					t.Fatalf("%s: enumerated world invalid", name)
				}
				worlds++
				a := q.Eval(s.MaterializeWorld())
				if a < wantMin {
					wantMin = a
				}
				if a > wantMax {
					wantMax = a
				}
			})
			if err != nil {
				t.Fatalf("%s/%s: enumerate: %v", name, q.Name(), err)
			}
			if worlds == 0 {
				t.Fatalf("%s: no worlds", name)
			}
			if res.Min != wantMin || res.Max != wantMax {
				t.Errorf("%s/%s: LICM bounds [%d,%d], exhaustive [%d,%d] over %d worlds",
					name, q.Name(), res.Min, res.Max, wantMin, wantMax, worlds)
			}
			if !res.MinProven || !res.MaxProven {
				t.Errorf("%s/%s: bounds not proven", name, q.Name())
			}
		}
	}
}

func TestPredHelpers(t *testing.T) {
	p := queries.Pred{Lo: 3, Hi: 7}
	if !p.Match(3) || !p.Match(7) || p.Match(2) || p.Match(8) {
		t.Error("Match wrong")
	}
	if p.Width() != 5 {
		t.Errorf("Width = %d", p.Width())
	}
	if (queries.Pred{Lo: 5, Hi: 4}).Width() != 0 {
		t.Error("empty width wrong")
	}
	if p.String() != "[3,7]" {
		t.Errorf("String = %q", p.String())
	}
}

func TestRangeWithSelectivity(t *testing.T) {
	p := queries.RangeWithSelectivity(1000, 0.005, 0)
	if p.Width() != 5 || p.Lo != 0 {
		t.Errorf("0.5%% of 1000 = %v", p)
	}
	p = queries.RangeWithSelectivity(40, 0.25, 20)
	if p.Width() != 10 || p.Lo != 20 {
		t.Errorf("25%% of 40 at 20 = %v", p)
	}
	// Clamped at the domain edge.
	p = queries.RangeWithSelectivity(10, 0.5, 8)
	if p.Hi != 9 || p.Width() != 5 {
		t.Errorf("clamped = %v", p)
	}
	// Tiny fraction still admits one value.
	p = queries.RangeWithSelectivity(10, 0.0001, 3)
	if p.Width() != 1 {
		t.Errorf("min width = %v", p)
	}
	// Negative offset wraps.
	p = queries.RangeWithSelectivity(10, 0.1, -3)
	if p.Lo != 7 {
		t.Errorf("negative offset = %v", p)
	}
}

func TestPaperSpecs(t *testing.T) {
	q1 := queries.PaperQ1(1000, 40)
	if q1.Pa.Width() != 5 || q1.Pb.Width() != 10 {
		t.Errorf("Q1 selectivities: %+v", q1)
	}
	q2 := queries.PaperQ2(1000, 40)
	if q2.X != 4 || q2.Y != 2 || q2.Pb == q2.Pc {
		t.Errorf("Q2 spec: %+v", q2)
	}
	q3 := queries.PaperQ3(1000, 0.003, 80)
	if q3.X != 80 || q3.Pa.Width() != 3 || q3.Pa == q3.Pb {
		t.Errorf("Q3 spec: %+v", q3)
	}
	if (queries.Q1{}).Name() != "Q1" || (queries.Q2{}).Name() != "Q2" || (queries.Q3{}).Name() != "Q3" {
		t.Error("names wrong")
	}
}

func TestEvalOnIdentityWorld(t *testing.T) {
	// On the un-anonymized world (k=1 encoding: all certain), LICM
	// bounds collapse to the exact deterministic answer.
	d, h := tinyData()
	g, err := anon.KmAnonymize(d, h, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := encode.Generalized(g, d.Items)
	for _, q := range testQueries() {
		rel, err := q.BuildLICM(e)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.CountBounds(e.DB, rel, solver.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		s := mc.NewSampler(e, 1)
		want := q.Eval(s.SampleWorld())
		if res.Min != want || res.Max != want {
			t.Errorf("%s: certain data bounds [%d,%d], want exactly %d", q.Name(), res.Min, res.Max, want)
		}
	}
}
