// Probabilistic priors — the extension the paper poses as an open
// problem in its conclusion: "extend LICM to incorporate prior
// distributions, perhaps as (independent) distributions over the
// binary variables. The goal of query answering is then to find the
// expected value of an aggregate, or tail bounds on its value."
//
// This example revisits the data-cleaning scenario (Example 1): five
// candidate address records per customer with 1-2 correct, but now a
// record's source reliability gives each record a prior probability.
// We compute:
//
//   - the possibilistic bounds (dropping probabilities, as the paper
//     notes LICM always can),
//   - the exact conditional expectation under the prior,
//   - a tail probability, and
//   - a rejection-sampling estimate for comparison.
package main

import (
	"fmt"
	"log"

	"licm/internal/core"
	"licm/internal/expr"
	"licm/internal/prior"
	"licm/internal/solver"
)

func main() {
	db := core.NewDB()
	addr := core.NewRelation("Addr", "Customer", "Region")

	// One customer, five candidate records from sources of varying
	// reliability; at least 1 and at most 2 are correct.
	regions := []string{"NE", "SE", "SE", "SW", "W"}
	reliability := []float64{0.9, 0.6, 0.5, 0.3, 0.2}
	vars := db.NewVars(5)
	for i, v := range vars {
		addr.Insert(core.Maybe(v), core.StrVal("alice"), core.StrVal(regions[i]))
	}
	db.AddCardinality(vars, 1, 2)

	// The aggregate: how many of Alice's candidate records are real?
	objective := expr.Sum(vars...)

	// 1. Possibilistic bounds (probability-free).
	res, err := core.Bounds(db, objective, solver.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("possibilistic bounds on correct-record count: [%d, %d]\n", res.Min, res.Max)

	// 2. Prior from source reliabilities, conditioned on the
	// cardinality constraint.
	pr, err := prior.New(db, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range vars {
		if err := pr.Set(v, reliability[i]); err != nil {
			log.Fatal(err)
		}
	}
	exact, err := pr.Exact(objective)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact E[count | constraints]: %.4f  (valid prior mass %.4f over %d worlds)\n",
		exact.Expected, exact.ValidMass, exact.Worlds)

	// 3. Tail probability: both slots used.
	tail, err := pr.ExactTail(objective, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P[count >= 2 | constraints]: %.4f\n", tail)

	// 4. Rejection sampling agrees within sampling error.
	est, err := pr.Estimate(objective, 200000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled E[count | constraints]: %.4f ± %.4f  (%d/%d accepted)\n",
		est.Expected, est.StdErr, est.Accepted, est.Proposed)

	// The probability each individual record is the true one,
	// conditioned on the constraint — per-record posteriors.
	fmt.Println("\nper-record posterior P[record correct | constraints]:")
	for i, v := range vars {
		p, err := pr.Exact(expr.Sum(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  record %d (%s, prior %.1f): %.4f\n", i, regions[i], reliability[i], p.Expected)
	}
}
