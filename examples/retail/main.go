// Retail analytics over anonymized transactions — the paper's
// evaluation pipeline end to end, at example scale:
//
//  1. generate a BMS-POS-shaped transaction dataset,
//  2. anonymize it with top-down local k-anonymity,
//  3. encode the generalized output into LICM (Appendix A),
//  4. translate Query 1 ("how many transactions at these store
//     locations bought at least one item in this price band?") into
//     LICM operators,
//  5. bound the answer exactly with the BIP solver, and
//  6. contrast with the naive Monte-Carlo range (Section IV-D).
package main

import (
	"fmt"
	"log"

	"licm/internal/anon"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/encode"
	"licm/internal/engine"
	"licm/internal/hierarchy"
	"licm/internal/mc"
	"licm/internal/queries"
	"licm/internal/solver"
)

func main() {
	// 1. Synthetic BMS-POS-shaped data.
	cfg := dataset.DefaultConfig(800)
	cfg.NumItems = 200
	d, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("dataset: %d transactions, %d items, avg basket %.1f\n",
		st.NumTransactions, st.NumItems, st.AvgSize)

	// 2. k-anonymize with local generalization (He & Naughton style).
	h, err := hierarchy.Build(cfg.NumItems, 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	const k = 6
	g, err := anon.KAnonymize(d, h, k)
	if err != nil {
		log.Fatal(err)
	}
	if err := anon.CheckK(g, k); err != nil {
		log.Fatal(err)
	}
	gs := g.Stats()
	fmt.Printf("k=%d anonymization: %d exact items kept, %d generalized items covering %d leaves\n",
		k, gs.ExactItems, gs.Generalized, gs.CoveredLeaves)

	// 3. LICM encoding.
	enc := encode.Generalized(g, d.Items)
	fmt.Printf("LICM encoding: %d variables, %d constraints\n\n",
		enc.DB.NumVars(), enc.DB.NumConstraints())

	// 4. Query 1 with a wider-than-paper location window so the
	// example has a few dozen qualifying transactions.
	q := queries.Q1{
		Pa: queries.RangeWithSelectivity(1000, 0.05, 0), // 5% of locations
		Pb: queries.RangeWithSelectivity(40, 0.25, 0),   // 25% of prices
	}
	rel, err := q.BuildLICM(enc)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Exact bounds.
	res, err := core.CountBounds(enc.DB, rel, solver.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query 1 (locations %v, prices %v):\n", q.Pa, q.Pb)
	fmt.Printf("  LICM exact bounds: [%d, %d]  (proven: %v/%v)\n",
		res.Min, res.Max, res.MinProven, res.MaxProven)
	fmt.Printf("  problem after pruning: %d vars, %d constraints, %d components\n",
		res.Stats.VarsAfterPrune, res.Stats.ConsAfterPrune, res.Stats.Components)

	// 6. Monte-Carlo comparison: 20 uniform worlds, as in the paper.
	sampler := mc.NewSampler(enc, 99)
	r := sampler.Run(q, 20)
	fmt.Printf("  Monte-Carlo (20 worlds) observed range: [%d, %d]\n", r.Min, r.Max)

	// The true (pre-anonymization) answer, which the analyst cannot
	// see, must lie inside the LICM bounds.
	truth := q.Eval(trueWorld(d))
	fmt.Printf("  hidden true answer: %d\n", truth)
	if truth < res.Min || truth > res.Max {
		log.Fatal("BUG: true answer escaped the bounds")
	}
}

// trueWorld materializes the original dataset as a deterministic
// world.
func trueWorld(d *dataset.Dataset) *queries.World {
	w := &queries.World{}
	trans := engine.New("Trans", "TID", "Location")
	items := engine.New("Items", "Item", "Price")
	ti := engine.New("TransItem", "TID", "Item")
	for _, t := range d.Trans {
		trans.Insert(core.IntVal(int64(t.ID)), core.IntVal(t.Location))
		for _, it := range t.Items {
			ti.Insert(core.IntVal(int64(t.ID)), core.IntVal(int64(it)))
		}
	}
	for _, it := range d.Items {
		items.Insert(core.IntVal(int64(it.ID)), core.IntVal(it.Price))
	}
	w.Trans, w.Items, w.TransItem = trans, items, ti
	return w
}
