// Quickstart: the paper's running example (Figure 2).
//
// Transaction T1 bought {Alcohol, Shampoo}, where "Alcohol" is a
// generalized item covering {Beer, Wine, Liquor}. LICM represents
// this as three maybe-tuples with existence variables b0,b1,b2 under
// the cardinality constraint b0+b1+b2 >= 1, plus one certain tuple —
// exactly Figure 2(c), and far more succinct than the 7-row
// U-relation enumeration of Figure 1.
//
// The program prints the relation, enumerates its possible worlds,
// and computes exact bounds for two aggregate queries.
package main

import (
	"fmt"
	"log"

	"licm/internal/core"
	"licm/internal/solver"
)

func main() {
	db := core.NewDB()
	transItem := core.NewRelation("TransItem", "TID", "ItemName")

	// Maybe-tuples for the generalized "Alcohol" item.
	alcohol := db.NewVars(3)
	transItem.Insert(core.Maybe(alcohol[0]), core.StrVal("T1"), core.StrVal("Beer"))
	transItem.Insert(core.Maybe(alcohol[1]), core.StrVal("T1"), core.StrVal("Wine"))
	transItem.Insert(core.Maybe(alcohol[2]), core.StrVal("T1"), core.StrVal("Liquor"))
	// The certain tuple.
	transItem.Insert(core.Certain, core.StrVal("T1"), core.StrVal("Shampoo"))
	// At least one of the alcohol possibilities is real (Figure 2(c)).
	db.AddCardinality(alcohol, 1, -1)

	fmt.Print(transItem)
	fmt.Printf("constraints: %v\n\n", db.Constraints())

	// The set of possible worlds: every non-empty subset of the three
	// alcohol items, always with the shampoo — 7 worlds (Figure 1).
	worlds := db.EnumWorlds()
	fmt.Printf("possible worlds: %d\n", len(worlds))
	for _, w := range worlds {
		var names []string
		for _, row := range core.Instantiate(transItem, w) {
			names = append(names, row[1].Str())
		}
		fmt.Printf("  %v\n", names)
	}

	// Aggregate 1: how many items does T1 have? Exact bounds via the
	// BIP solver: [2, 4].
	res, err := core.CountBounds(db, transItem, solver.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCOUNT(items of T1): between %d and %d\n", res.Min, res.Max)

	// Aggregate 2: how many *alcoholic* items? Select then count: [1, 3].
	alcoholOnly := core.Select(transItem, func(r core.Row) bool {
		s := r.Str("ItemName")
		return s == "Beer" || s == "Wine" || s == "Liquor"
	})
	res, err = core.CountBounds(db, alcoholOnly, solver.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(alcoholic items): between %d and %d\n", res.Min, res.Max)

	// The witness world for the maximum identifies the boundary case.
	fmt.Printf("a world achieving the maximum: %v\n", worldNames(transItem, res.MaxWorld))
}

func worldNames(r *core.Relation, w []uint8) []string {
	var names []string
	for _, row := range core.Instantiate(r, w) {
		names = append(names, row[1].Str())
	}
	return names
}
