// Data cleaning (Example 1 of the paper).
//
// A customer database integrated from several sources holds up to
// five conflicting address records per customer; domain knowledge
// says at least one and at most two of each customer's records are
// correct (home and office). The analyst asks:
//
//	"At most how many regions have more than `threshold` of our
//	 customers?"
//
// No prior system answered this directly: the cardinality constraint
// "1 <= correct records <= 2" is what LICM encodes natively, and the
// answer is the exact upper bound of a COUNT over all worlds
// consistent with it — computed here with a count-predicate operator
// (Algorithm 4) and the BIP solver.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"licm/internal/core"
	"licm/internal/expr"
	"licm/internal/solver"
)

func main() {
	const (
		numCustomers = 120
		numRegions   = 8
		threshold    = 20 // "more than `threshold` customers"
	)
	rng := rand.New(rand.NewSource(7))
	db := core.NewDB()
	addr := core.NewRelation("Addr", "Customer", "Region")

	for c := 0; c < numCustomers; c++ {
		// Each customer has 2-5 candidate records from different
		// sources, of which 1 or 2 are correct.
		n := 2 + rng.Intn(4)
		vars := make([]expr.Var, n)
		for i := range vars {
			vars[i] = db.NewVar()
			region := rng.Intn(numRegions)
			addr.Insert(core.Maybe(vars[i]),
				core.IntVal(int64(c)), core.IntVal(int64(region)))
		}
		hi := 2
		if n < 2 {
			hi = n
		}
		db.AddCardinality(vars, 1, hi)
	}

	// Query plan:
	//   dedupe to (Customer, Region) pairs             -- projection
	//   per region: COUNT(customers) >= threshold+1    -- Algorithm 4
	//   COUNT(*) of qualifying regions                 -- objective
	pairs := core.Project(db, addr, "Region", "Customer")
	busy := core.CountPredicate(db, pairs, []string{"Region"}, core.CountGE, threshold+1)
	res, err := core.CountBounds(db, busy, solver.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("customers: %d, candidate records: %d, regions: %d\n",
		numCustomers, addr.Len(), numRegions)
	fmt.Printf("LICM store: %d variables, %d constraints\n\n", db.NumVars(), db.NumConstraints())
	fmt.Printf("regions with more than %d customers, across ALL worlds consistent\n", threshold)
	fmt.Printf("with the 1-to-2-records-per-customer constraint:\n")
	fmt.Printf("  at least %d and at most %d\n\n", res.Min, res.Max)

	// The witness for the maximum shows which correlated choice of
	// records produces the extreme — the insight Monte-Carlo sampling
	// misses (Section IV-D).
	perRegion := map[int64]int{}
	seen := map[[2]int64]bool{}
	for _, row := range core.Instantiate(addr, res.MaxWorld) {
		key := [2]int64{row[0].Int(), row[1].Int()}
		if !seen[key] {
			seen[key] = true
			perRegion[row[1].Int()]++
		}
	}
	fmt.Println("customer counts per region in the max-achieving world:")
	for r := 0; r < numRegions; r++ {
		fmt.Printf("  region %d: %d\n", r, perRegion[int64(r)])
	}
}
