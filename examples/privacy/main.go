// Privacy / permuted microdata (Example 2 and Figures 8-9 of the
// paper).
//
// A hospital publishes patient demographics exactly but permutes the
// link between patients and diagnoses inside groups (a safe (k,l)
// grouping / bucketization). Each group's true mapping is an unknown
// bijection — the permutation constraint of Example 3, which LICM
// encodes as row/column "exactly one" constraints.
//
// A researcher asks: "At least how many male patients do NOT have
// cancer?" — a lower bound over every world consistent with the
// published data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"licm/internal/core"
	"licm/internal/expr"
	"licm/internal/solver"
)

func main() {
	const (
		numPatients = 90
		groupSize   = 3
	)
	diseases := []string{"flu", "cancer", "heart disease", "asthma", "diabetes"}
	rng := rand.New(rand.NewSource(3))

	// Ground truth (known only to the hospital).
	sex := make([]string, numPatients)
	trueDiag := make([]string, numPatients)
	for i := range sex {
		if rng.Intn(2) == 0 {
			sex[i] = "male"
		} else {
			sex[i] = "female"
		}
		trueDiag[i] = diseases[rng.Intn(len(diseases))]
	}

	// Published form: per group of `groupSize` patients, the multiset
	// of diagnoses — with the assignment permuted away. In LICM, one
	// maybe-tuple per (patient, diagnosis-slot) pair plus bijection
	// constraints (Figure 9).
	db := core.NewDB()
	rel := core.NewRelation("PatientDiag", "Patient", "Sex", "Disease")
	for g := 0; g*groupSize < numPatients; g++ {
		lo := g * groupSize
		hi := lo + groupSize
		if hi > numPatients {
			hi = numPatients
		}
		n := hi - lo
		matrix := make([][]expr.Var, n)
		for i := 0; i < n; i++ {
			matrix[i] = db.NewVars(n)
			for j := 0; j < n; j++ {
				rel.Insert(core.Maybe(matrix[i][j]),
					core.IntVal(int64(lo+i)),
					core.StrVal(sex[lo+i]),
					core.StrVal(trueDiag[lo+j]))
			}
		}
		for i := 0; i < n; i++ {
			db.AddExactlyOne(matrix[i])
			col := make([]expr.Var, n)
			for j := 0; j < n; j++ {
				col[j] = matrix[j][i]
			}
			db.AddExactlyOne(col)
		}
	}

	// Query: male patients whose diagnosis is not cancer.
	malesNotCancer := core.Select(rel, func(r core.Row) bool {
		return r.Str("Sex") == "male" && r.Str("Disease") != "cancer"
	})
	perPatient := core.Project(db, malesNotCancer, "Patient")
	res, err := core.CountBounds(db, perPatient, solver.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	males, truth := 0, 0
	for i := 0; i < numPatients; i++ {
		if sex[i] == "male" {
			males++
			if trueDiag[i] != "cancer" {
				truth++
			}
		}
	}
	fmt.Printf("patients: %d (%d male), groups of %d, diagnoses permuted per group\n",
		numPatients, males, groupSize)
	fmt.Printf("LICM store: %d variables, %d constraints\n\n", db.NumVars(), db.NumConstraints())
	fmt.Printf("male patients without cancer, over all worlds consistent with the publication:\n")
	fmt.Printf("  at least %d, at most %d   (hidden ground truth: %d)\n", res.Min, res.Max, truth)

	if res.Min > int64(truth) || res.Max < int64(truth) {
		log.Fatal("BUG: ground truth escaped the bounds")
	}
	fmt.Println("\nground truth is inside the bounds, as it must be: the original")
	fmt.Println("assignment is one of the possible worlds of its own anonymization.")
}
