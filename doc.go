// Package licm is a from-scratch Go implementation of LICM — the
// Linear Integer Constraint Model of Cormode, Shen, Srivastava and Yu,
// "Aggregate Query Answering on Possibilistic Data with Cardinality
// Constraints" (ICDE 2012) — together with every substrate its
// evaluation depends on: the set-valued anonymization schemes whose
// outputs LICM models, a BMS-POS-shaped data generator, a
// deterministic relational engine, a Monte-Carlo baseline, and a pure
// Go binary integer programming solver standing in for CPLEX.
//
// The library lives under internal/; see README.md for the
// architecture map, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root package holds the benchmark harness
// (bench_test.go) that regenerates every evaluation figure:
//
//	go test -bench=. -benchmem
//
// Runnable entry points:
//
//	go run ./examples/quickstart      (Figure 2(c) walkthrough)
//	go run ./cmd/licmexp -fig all     (regenerate the evaluation)
package licm
