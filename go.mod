module licm

go 1.22
