// Command licmgen generates a synthetic BMS-POS-shaped transaction
// dataset (the paper's evaluation substrate) and writes it to a file
// or stdout in the format understood by the other licm tools.
//
// With -queries it instead emits a randomized aggregate-query set
// (licm-queries/1 JSONL) for the workload observatory, so workloads
// are reproducible artifacts: `licmgen -queries 40 -seed 7 -o q.jsonl`
// followed by `licmload -replay q.jsonl -seed 7` answers exactly the
// queries `licmload -queries 40 -seed 7` would generate in-process.
//
// Usage:
//
//	licmgen -trans 10000 -items 1657 -seed 1 -o data.txt
//	licmgen -queries 200 -seed 7 -o queries.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"licm/internal/dataset"
	"licm/internal/obs"
	"licm/internal/seedflag"
	"licm/internal/workload"
)

func main() {
	var (
		trans   = flag.Int("trans", 10000, "number of transactions")
		items   = flag.Int("items", 1657, "number of item types")
		avg     = flag.Float64("avg", 6.5, "average transaction size")
		max     = flag.Int("max", 164, "maximum transaction size")
		skew    = flag.Float64("skew", 1.25, "Zipf skew of item popularity (> 1)")
		queries = flag.Int("queries", 0, "emit this many randomized query specs (licm-queries/1 JSONL) instead of a dataset; replay with licmload -replay")
		out     = flag.String("o", "", "output file (default stdout)")
		doStat  = flag.Bool("stats", false, "print dataset statistics to stderr")

		debugAddr = flag.String("debug-addr", "", "serve pprof, expvar, Prometheus /metrics and the /debug/licm dashboard on this address, e.g. :6060")
	)
	seed := seedflag.Register(flag.CommandLine)
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.NewLogger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, obs.NewRegistry())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/ — /debug/pprof/, /debug/vars, /metrics, /debug/licm\n", srv.Addr())
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *queries > 0 {
		// Query-set mode: the specs range over the default dataset
		// domains (locations 0..999, prices 0..39) and derive from the
		// workload stream of the master seed, matching what licmload
		// generates in-process for the same -seed.
		specs := workload.GenerateSpecs(*queries,
			seedflag.Derive(*seed, seedflag.WorkloadStream), 1000, 40)
		if err := workload.WriteSpecs(w, specs); err != nil {
			fatal(err)
		}
		logger.Info("query set generated", "queries", *queries, "seed", *seed)
		return
	}

	cfg := dataset.DefaultConfig(*trans)
	cfg.NumItems = *items
	cfg.AvgSize = *avg
	cfg.MaxSize = *max
	cfg.ZipfS = *skew
	cfg.Seed = seedflag.Derive(*seed, seedflag.DatasetStream)
	d, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	logger.Info("dataset generated",
		"transactions", *trans, "items", *items, "seed", *seed)
	if _, err := d.WriteTo(w); err != nil {
		fatal(err)
	}
	if *doStat {
		s := d.Stats()
		fmt.Fprintf(os.Stderr, "transactions=%d items=%d distinct-items=%d avg-size=%.2f max-size=%d rows=%d\n",
			s.NumTransactions, s.NumItems, s.DistinctItems, s.AvgSize, s.MaxSize, s.TotalRows)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "licmgen:", err)
	os.Exit(1)
}
