// Command licmgen generates a synthetic BMS-POS-shaped transaction
// dataset (the paper's evaluation substrate) and writes it to a file
// or stdout in the format understood by the other licm tools.
//
// Usage:
//
//	licmgen -trans 10000 -items 1657 -seed 1 -o data.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"licm/internal/dataset"
	"licm/internal/obs"
)

func main() {
	var (
		trans  = flag.Int("trans", 10000, "number of transactions")
		items  = flag.Int("items", 1657, "number of item types")
		avg    = flag.Float64("avg", 6.5, "average transaction size")
		max    = flag.Int("max", 164, "maximum transaction size")
		skew   = flag.Float64("skew", 1.25, "Zipf skew of item popularity (> 1)")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
		doStat = flag.Bool("stats", false, "print dataset statistics to stderr")

		debugAddr = flag.String("debug-addr", "", "serve pprof, expvar, Prometheus /metrics and the /debug/licm dashboard on this address, e.g. :6060")
	)
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.NewLogger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, obs.NewRegistry())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/ — /debug/pprof/, /debug/vars, /metrics, /debug/licm\n", srv.Addr())
	}

	cfg := dataset.DefaultConfig(*trans)
	cfg.NumItems = *items
	cfg.AvgSize = *avg
	cfg.MaxSize = *max
	cfg.ZipfS = *skew
	cfg.Seed = *seed
	d, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	logger.Info("dataset generated",
		"transactions", *trans, "items", *items, "seed", *seed)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := d.WriteTo(w); err != nil {
		fatal(err)
	}
	if *doStat {
		s := d.Stats()
		fmt.Fprintf(os.Stderr, "transactions=%d items=%d distinct-items=%d avg-size=%.2f max-size=%d rows=%d\n",
			s.NumTransactions, s.NumItems, s.DistinctItems, s.AvgSize, s.MaxSize, s.TotalRows)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "licmgen:", err)
	os.Exit(1)
}
