// Command licmlint runs the repository's custom static analyzers
// (internal/analysis: floatcmp, obsnil, atomiccounter, ctxcancel)
// over Go
// packages, in the style of go vet / multichecker.
//
// Usage:
//
//	licmlint [-only name,name] [-dir path] [patterns...]
//
// Patterns default to ./... . Exit status: 0 when the code is clean,
// 1 when any analyzer reported a finding (cliexit convention), 2 when
// loading or analysis
// itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"licm/internal/analysis"
	"licm/internal/cliexit"
	"licm/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("licmlint", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory (module) to load packages from")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: licmlint [flags] [package patterns]\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	logger, err := logOpts.NewLogger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "licmlint: %v\n", err)
		return cliexit.Usage
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return cliexit.OK
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "licmlint: unknown analyzer %q\n", name)
				return cliexit.Usage
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "licmlint: %v\n", err)
		return cliexit.Usage
	}
	logger.Debug("packages loaded", "packages", len(pkgs), "analyzers", len(analyzers))
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "licmlint: %v\n", err)
		return cliexit.Usage
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return cliexit.Findings
	}
	return cliexit.OK
}
