// Command licmd is the long-lived LICM query service: it generates and
// anonymizes one possibilistic store at startup, then answers aggregate
// bounds queries over HTTP/JSON through the anytime supervisor
// (internal/serve) until told to drain.
//
// Usage:
//
//	licmd -addr :8080 -trans 300 -items 60 -scheme k -k 4 -seed 7
//	licmd -addr 127.0.0.1:0 -addr-file licmd.addr   # CI: discover the port
//	licmd -addr :8080 -debug-addr :8081             # plus pprof/dashboard
//
// Endpoints: POST /v1/query (licm-queries/1 spec in, licm-serve/1
// record out), GET /healthz, GET /readyz, GET /metrics, and
// GET /debug/licm/requests (flight-recorder forensics: the worst-N
// requests by policy, correlated to traces and licmload records by
// request id). Query it with `licmload -target` (full scored workload)
// or curl.
//
// Serving objectives declared with repeatable -slo flags (for example
// -slo p99<=250ms -slo exact-rate>=0.5) are tracked as licm_slo_*
// error-budget series on /metrics; -requests-dump writes the flight
// recorder to a file after drain for `licmtrace requests`.
//
// SIGTERM/SIGINT starts a graceful drain: readiness flips to 503, new
// queries get a typed "draining" error, in-flight and queued solves
// finish, then the process exits 0. If the drain timeout expires with
// queries still in flight, the process exits 3 (degraded).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"licm/internal/cliexit"
	"licm/internal/obs"
	"licm/internal/seedflag"
	"licm/internal/serve"
	"licm/internal/solver"
	"licm/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "serve the query API on this address (host:0 picks a free port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening (CI port discovery)")

		trans  = fs.Int("trans", 300, "number of transactions in the served store")
		items  = fs.Int("items", 60, "number of item types")
		fanout = fs.Int("fanout", 8, "generalization hierarchy fanout")
		scheme = fs.String("scheme", "k", "anonymization scheme: km | k | bipartite | suppress")
		k      = fs.Int("k", 4, "anonymity parameter (support threshold for suppress)")
		m      = fs.Int("m", 2, "subset size for km-anonymity")
		mcN    = fs.Int("mc", 30, "Monte-Carlo samples for the sampled fallback rung")
		nodes  = fs.Int64("maxnodes", 300_000, "solver node budget per solve")

		workers   = fs.Int("workers", 0, "solve worker pool size (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 64, "admission queue depth")
		watermark = fs.Int("watermark", 0, "queue depth at which new queries shed to the sampled rung (0 = queue/2)")
		shedN     = fs.Int("shed-samples", 0, "Monte-Carlo samples on the shed path (0 = -mc, negative disables shedding)")

		defDead  = fs.Duration("default-deadline", 30*time.Second, "per-query budget when the request carries none (0 = unlimited)")
		maxDead  = fs.Duration("max-deadline", 2*time.Minute, "clamp on client-requested deadlines")
		drainCap = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight queries before giving up")

		allowFault = fs.Bool("allow-fault-header", false, "honor the test-only X-Licm-Fault injection header (chaos harness; never in production)")

		recDepth = fs.Int("recorder-depth", 0, "flight-recorder retention per class at /debug/licm/requests (0 = 32, negative disables)")
		reqDump  = fs.String("requests-dump", "", "write the flight recorder as a licm-requests/1 dump to this file after drain")

		tracePath = fs.String("trace", "", "write a JSON-lines trace to this file")
		verbose   = fs.Bool("verbose", false, "print a human-readable trace to stderr")
		debugAddr = fs.String("debug-addr", "", "also serve pprof, /metrics and the /debug/licm dashboard on this address")
	)
	var sloSpecs multiFlag
	fs.Var(&sloSpecs, "slo", "serving objective, repeatable: pNN<=DUR, exact-rate>=F or proven-rate>=F (e.g. -slo p99<=250ms -slo exact-rate>=0.5)")
	seed := seedflag.Register(fs)
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "licmd:", err)
		return cliexit.Usage
	}
	slos, err := serve.ParseSLOs(sloSpecs)
	if err != nil {
		return fail(err)
	}

	logger, err := logOpts.NewLogger(stderr)
	if err != nil {
		return fail(err)
	}
	tr, closeTrace, err := obs.Setup(*tracePath, *verbose, stderr)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			fmt.Fprintln(stderr, "licmd:", err)
		}
	}()
	metrics := obs.NewRegistry()

	opts := solver.DefaultOptions()
	opts.MaxNodes = *nodes
	opts.CompleteWitness = false
	cfg := serve.Config{
		Workload: workload.Config{
			NumTransactions: *trans,
			NumItems:        *items,
			HierarchyFanout: *fanout,
			Scheme:          *scheme,
			K:               *k,
			M:               *m,
			Seed:            *seed,
			MCSamples:       *mcN,
			Solver:          opts,
			Trace:           tr,
			Metrics:         metrics,
			Log:             logger,
		},
		Workers:          *workers,
		QueueDepth:       *queue,
		ShedWatermark:    *watermark,
		ShedSamples:      *shedN,
		DefaultDeadline:  *defDead,
		MaxDeadline:      *maxDead,
		AllowFaultHeader: *allowFault,
		RecorderDepth:    *recDepth,
		SLOs:             slos,
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return fail(err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return fail(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fail(err)
		}
	}
	if *debugAddr != "" {
		dbound, err := srv.AttachDebug(*debugAddr)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "debug server on http://%s/ — /debug/pprof/, /metrics, /debug/licm\n", dbound)
	}
	fmt.Fprintf(stderr, "licmd: serving %s(k=%d) store, seed %d, on http://%s/ (POST /v1/query)\n",
		*scheme, *k, *seed, bound)
	if *allowFault {
		fmt.Fprintln(stderr, "licmd: WARNING: X-Licm-Fault injection header enabled (test-only)")
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigs
	fmt.Fprintf(stderr, "licmd: %v — draining (timeout %v)\n", sig, *drainCap)

	ctx, cancel := context.WithTimeout(context.Background(), *drainCap)
	defer cancel()
	drainErr := srv.Drain(ctx)
	// The forensic dump is written on degraded drains too — that is
	// when the retained worst-case requests matter most.
	if *reqDump != "" {
		if err := writeRequestsDump(*reqDump, srv.Requests()); err != nil {
			fmt.Fprintln(stderr, "licmd:", err)
			if drainErr == nil {
				return cliexit.Degraded
			}
		} else {
			fmt.Fprintf(stderr, "licmd: wrote requests dump to %s\n", *reqDump)
		}
	}
	if drainErr != nil {
		fmt.Fprintln(stderr, "licmd:", drainErr)
		return cliexit.Degraded
	}
	fmt.Fprintln(stderr, "licmd: drain complete")
	return cliexit.OK
}

// writeRequestsDump persists the flight recorder as licm-requests/1.
func writeRequestsDump(path string, rec *serve.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteDump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
