package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"licm/internal/cert"
	"licm/internal/expr"
	"licm/internal/solver"
)

// liveCerts certifies a real solve (knapsack + cardinality groups)
// and returns the JSONL bytes — the same artifact licmq -certify
// writes.
func liveCerts(t *testing.T, cripple bool) []byte {
	t.Helper()
	const n = 18
	obj := expr.Lin{}
	knap := expr.Lin{}
	for v := 0; v < n; v++ {
		obj = obj.AddTerm(expr.Var(v), int64(1+(v*7)%5))
		knap = knap.AddTerm(expr.Var(v), int64(1+(v*3)%4))
	}
	cons := []expr.Constraint{expr.NewConstraint(knap, expr.LE, 14)}
	for g := 0; g < 3; g++ {
		lo := expr.Var(g * 6)
		cons = append(cons,
			expr.NewConstraint(expr.Sum(lo, lo+1, lo+2, lo+3, lo+4, lo+5), expr.LE, 3),
			expr.NewConstraint(expr.Sum(lo, lo+1), expr.GE, 1))
	}
	p := &solver.Problem{NumVars: n, Constraints: cons, Objective: obj}
	crec := &solver.CertRecorder{}
	opts := solver.DefaultOptions()
	if cripple {
		opts.UseLP = false
		opts.MaxNodes = 20
	}
	opts.Certify = crec
	if _, _, err := solver.Bounds(p, opts); err != nil && !cripple {
		t.Fatal(err)
	}
	certs, err := cert.Build("q1", "row", 2, crec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, c := range certs {
		if err := cert.WriteJSONL(&buf, c); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func writeTemp(t *testing.T, name string, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runVerify(t *testing.T, stdin []byte, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, bytes.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestVerifyClean(t *testing.T) {
	path := writeTemp(t, "certs.jsonl", liveCerts(t, false))
	code, out, stderr := runVerify(t, nil, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "q1 max: verified") || !strings.Contains(out, "q1 min: verified") {
		t.Fatalf("summary lines missing from output: %s", out)
	}
}

func TestVerifyStdin(t *testing.T) {
	code, _, stderr := runVerify(t, liveCerts(t, false), "-")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

func TestVerifyMutateCheck(t *testing.T) {
	path := writeTemp(t, "certs.jsonl", liveCerts(t, false))
	code, _, stderr := runVerify(t, nil, "-mutate-check", path)
	if code != 0 {
		t.Fatalf("-mutate-check exit %d, stderr: %s", code, stderr)
	}
}

// TestVerifyRejectsTextTamper mirrors the CI gate's corruption: blunt
// textual edits to the JSONL must flip the exit to 1.
func TestVerifyRejectsTextTamper(t *testing.T) {
	clean := string(liveCerts(t, false))
	for name, tampered := range map[string]string{
		"value-digit": strings.Replace(clean, `"value":`, `"value":9`, 1),
		"schema-tag":  strings.ReplaceAll(clean, "licm-cert/1", "licm-cert/0"),
		"not-json":    "{\n",
	} {
		path := writeTemp(t, "bad.jsonl", []byte(tampered))
		code, _, stderr := runVerify(t, nil, path)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1 (stderr: %s)", name, code, stderr)
		}
		if !strings.Contains(stderr, "REJECTED") {
			t.Errorf("%s: rejection not reported: %s", name, stderr)
		}
	}
}

// TestVerifyStrictDegraded: certificates from an unproven solve are
// accepted (exit 0) by default but exit 3 under -strict.
func TestVerifyStrictDegraded(t *testing.T) {
	data := liveCerts(t, true)
	if len(data) == 0 {
		t.Skip("crippled solve recorded no runs")
	}
	path := writeTemp(t, "degraded.jsonl", data)
	if code, _, stderr := runVerify(t, nil, path); code != 0 {
		t.Fatalf("default mode exit %d, want 0 (stderr: %s)", code, stderr)
	}
	if code, _, _ := runVerify(t, nil, "-strict", path); code != 3 {
		t.Fatalf("-strict exit %d, want 3", code)
	}
}

func TestVerifyUsage(t *testing.T) {
	if code, _, _ := runVerify(t, nil); code != 2 {
		t.Fatal("no arguments should exit 2")
	}
	if code, _, _ := runVerify(t, nil, filepath.Join(t.TempDir(), "absent.jsonl")); code != 2 {
		t.Fatal("missing file should exit 2")
	}
}

func TestVerifyJSONOutput(t *testing.T) {
	path := writeTemp(t, "certs.jsonl", liveCerts(t, false))
	code, out, stderr := runVerify(t, nil, "-json", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d verdict lines, want 2", len(lines))
	}
	for _, line := range lines {
		var v struct {
			Input    string `json:"input"`
			Query    string `json:"Query"`
			Verified int    `json:"Verified"`
		}
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("verdict line is not JSON: %v\n%s", err, line)
		}
		if v.Input != path || v.Verified == 0 {
			t.Fatalf("unexpected verdict: %s", line)
		}
	}
}
