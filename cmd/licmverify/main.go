// Command licmverify is the independent certificate checker: it
// replays licm-cert/1 optimality certificates (produced by
// licmq -certify / licmexp -certify) in exact rational arithmetic and
// accepts only certificates whose every claim checks out — witness
// feasibility and value, branch-tree coverage of the full 0/1 space,
// and a sound dual, integral-optimum, or Farkas justification at
// every leaf. It shares no arithmetic with the solver's emitter, so
// a solver bug and a verifier bug have to coincide before a wrong
// optimum survives.
//
// Usage:
//
//	licmverify certs.jsonl [more.jsonl ...]
//	licmq -in data.txt -query q1 -certify - | licmverify -
//
// Exit status (internal/cliexit): 0 when every certificate verifies,
// 1 when any certificate is rejected (including malformed lines —
// a record that cannot be read strictly is a rejected certificate),
// 2 when an input file cannot be opened or the flags are unusable,
// and 3 when -strict is set and any accepted certificate carries
// skipped (unproven) components or a recorded solve error.
//
// -json emits one verdict object per certificate for tooling;
// -mutate-check additionally corrupts each accepted certificate with
// the deterministic internal/cert mutant suite and fails if the
// verifier accepts any mutant — the self-test the CI cert gate runs
// on live certificates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"licm/internal/cert"
	"licm/internal/cliexit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strict := fs.Bool("strict", false, "exit 3 when an accepted certificate is degraded (skipped components or a recorded solve error)")
	asJSON := fs.Bool("json", false, "print verdicts as JSON, one object per certificate")
	mutate := fs.Bool("mutate-check", false, "also corrupt each accepted certificate and fail unless every mutant is rejected")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: licmverify [-strict] [-json] [-mutate-check] certs.jsonl ... (or - for stdin)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return cliexit.Usage
	}

	exit := cliexit.OK
	worsen := func(code int) {
		// Rejections outrank degradation; degradation outranks clean.
		if code == cliexit.Findings && exit != cliexit.Findings {
			exit = code
		}
		if code == cliexit.Degraded && exit == cliexit.OK {
			exit = code
		}
	}
	for _, path := range paths {
		certs, err := readOne(path, stdin)
		if err != nil {
			if os.IsNotExist(err) || os.IsPermission(err) {
				fmt.Fprintf(stderr, "licmverify: %s: %v\n", path, err)
				return cliexit.Usage
			}
			// A line that fails the strict read is a rejected record,
			// not an unusable invocation.
			fmt.Fprintf(stderr, "licmverify: %s: REJECTED: %v\n", path, err)
			worsen(cliexit.Findings)
			continue
		}
		for i, c := range certs {
			v, err := cert.Verify(c)
			if err != nil {
				fmt.Fprintf(stderr, "licmverify: %s: certificate %d: REJECTED: %v\n", path, i, err)
				worsen(cliexit.Findings)
				continue
			}
			if *asJSON {
				enc := json.NewEncoder(stdout)
				if err := enc.Encode(struct {
					Input string `json:"input"`
					Index int    `json:"index"`
					cert.Verdict
				}{path, i, v}); err != nil {
					fmt.Fprintf(stderr, "licmverify: %v\n", err)
					return cliexit.Usage
				}
			} else {
				label := v.Query
				if label == "" {
					label = "(unlabeled)"
				}
				fmt.Fprintf(stdout, "%s: %s %s: verified %d component(s), value %d%s\n",
					path, label, v.Sense, v.Verified, v.Value, degradeNote(v))
			}
			if *strict && degraded(v) {
				worsen(cliexit.Degraded)
			}
			if *mutate {
				for _, m := range cert.Mutants(c) {
					if err := m.Cert.Validate(); err != nil {
						continue // rejected at the strict-read gate
					}
					if _, err := cert.Verify(m.Cert); err == nil {
						fmt.Fprintf(stderr, "licmverify: %s: certificate %d: mutant %q ACCEPTED — verifier unsound\n", path, i, m.Name)
						worsen(cliexit.Findings)
					}
				}
			}
		}
	}
	return exit
}

func degraded(v cert.Verdict) bool {
	return len(v.Skipped) > 0 || !v.Proven || v.Err != ""
}

func degradeNote(v cert.Verdict) string {
	switch {
	case len(v.Skipped) > 0:
		return fmt.Sprintf(" (%d component(s) skipped)", len(v.Skipped))
	case v.Err != "":
		return fmt.Sprintf(" (solve error: %s)", v.Err)
	case !v.Proven:
		return " (unproven)"
	default:
		return ""
	}
}

// readOne reads the named certificate stream strictly, with "-"
// meaning stdin.
func readOne(path string, stdin io.Reader) ([]*cert.Certificate, error) {
	var r io.Reader
	if path == "-" {
		r = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return cert.ReadJSONL(r, true)
}
