package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"licm/internal/serve"
)

// writeDump builds a synthetic flight-recorder dump on disk.
func writeDump(t *testing.T, name string, mutate func(*serve.Recorder)) string {
	t.Helper()
	rec := serve.NewRecorder(4)
	mutate(rec)
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteDump(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func reqEntry(id string, totalNs int64, quality string, panicked bool) *serve.RecordedRequest {
	resp := &serve.Response{Schema: serve.ResponseSchema, RequestID: id, Name: "q1-count", Quality: quality}
	if panicked {
		resp.PanicsRecovered = 1
	}
	return &serve.RecordedRequest{
		RequestID: id,
		Start:     time.Unix(0, 0).UTC(),
		TotalNs:   totalNs,
		Response:  resp,
	}
}

func TestRequestsRenderAndStrict(t *testing.T) {
	clean := writeDump(t, "clean.json", func(rec *serve.Recorder) {
		rec.Observe(reqEntry("r-1", 1000, "exact", false))
		rec.Observe(reqEntry("r-2", 2000, "sampled", false))
	})
	bad := writeDump(t, "bad.json", func(rec *serve.Recorder) {
		rec.Observe(reqEntry("r-1", 1000, "exact", false))
		rec.Observe(reqEntry("r-3", 3000, "exact", true))
	})

	var stdout, stderr bytes.Buffer
	if code := run([]string{"requests", clean}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("render exit %d\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"r-1", "r-2", "degraded", "slowest"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output lacks %q:\n%s", want, out)
		}
	}

	// -strict passes on a clean dump, flags retained panics.
	if code := run([]string{"requests", "-strict", clean}, strings.NewReader(""), &bytes.Buffer{}, &stderr); code != 0 {
		t.Errorf("strict on clean dump: exit %d", code)
	}
	if code := run([]string{"requests", "-strict", bad}, strings.NewReader(""), &bytes.Buffer{}, &stderr); code != 1 {
		t.Errorf("strict on panicked dump: exit %d, want 1", code)
	}

	// -id detail view.
	stdout.Reset()
	if code := run([]string{"requests", "-id", "r-2", clean}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("detail exit %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "r-2") || !strings.Contains(stdout.String(), "sampled") {
		t.Errorf("detail output:\n%s", stdout.String())
	}
	if code := run([]string{"requests", "-id", "absent", clean}, strings.NewReader(""), &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("absent id: exit %d, want 2", code)
	}
}

func TestRequestsDiff(t *testing.T) {
	clean := writeDump(t, "clean.json", func(rec *serve.Recorder) {
		rec.Observe(reqEntry("r-1", 1000, "sampled", false))
	})
	bad := writeDump(t, "bad.json", func(rec *serve.Recorder) {
		rec.Observe(reqEntry("r-2", 2000, "exact", true))
	})

	var stdout, stderr bytes.Buffer
	// Self-diff is clean; degraded retention alone never breaches.
	if code := run([]string{"requests", "-diff", clean, clean}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("self-diff exit %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no bad-outcome retention growth") {
		t.Errorf("self-diff output:\n%s", stdout.String())
	}

	// Panicked retention growth breaches with exit 1.
	stdout.Reset()
	if code := run([]string{"requests", "-diff", clean, bad}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("growth diff exit %d, want 1\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "panicked retention grew 0 -> 1") {
		t.Errorf("growth diff output:\n%s", stdout.String())
	}

	// A foreign schema is a usage error, not a silent pass.
	foreign := filepath.Join(t.TempDir(), "foreign.json")
	if err := os.WriteFile(foreign, []byte(`{"schema":"licm-bench/1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"requests", foreign}, strings.NewReader(""), &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("foreign schema: exit %d, want 2", code)
	}
}
