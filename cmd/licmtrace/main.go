// Command licmtrace analyzes the JSON-lines traces and benchmark
// snapshots the licm tools produce (schema in OBSERVABILITY.md) — the
// read side of the observability layer, in the role EXPLAIN ANALYZE
// plays for a query engine.
//
// Usage:
//
//	licmtrace summary trace.jsonl           # per-phase rollups + critical path
//	licmtrace summary -request <id> trace.jsonl  # one served request's slice of the trace
//	licmtrace flame trace.jsonl > out.folded  # folded stacks for flamegraph tools
//	licmtrace diff old.jsonl new.jsonl      # phase-by-phase regression check
//	licmtrace cat -name solver trace.jsonl  # filter/pretty-print events
//	licmtrace bench-diff old.json new.json  # compare BENCH_<label>.json snapshots
//	licmtrace census explain.jsonl          # component recurrence census over explain records
//	licmtrace load run.jsonl                # workload-run summary (licm-load/1, from licmload)
//	licmtrace load -diff BENCH_workload.json run.jsonl  # workload regression gate
//	licmtrace requests requests.json        # flight-recorder dump (licm-requests/1) rendering
//	licmtrace requests -diff old.json new.json  # forensic regression check between dumps
//	curl -s :6060/metrics | licmtrace promcheck -  # validate a /metrics scrape
//
// Exit status follows licmvet/go vet via internal/cliexit: 0 when
// clean, 1 when diff,
// bench-diff or promcheck finds a breach or invalid exposition, 2 when
// an input cannot be read or parsed. Every subcommand takes -json for
// machine-readable output, -log-level/-log-format for diagnostics, and
// accepts "-" for stdin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"strings"
	"time"

	"licm/internal/bench"
	"licm/internal/cliexit"
	"licm/internal/obs"
	"licm/internal/tracean"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) {
	fmt.Fprint(stderr, `usage: licmtrace <command> [flags] <args>

commands:
  summary [-json] [-request id] <trace.jsonl>
                                             per-phase rollups, critical path, latency histograms;
                                             -request keeps one served request's events only
  flame [-request id] <trace.jsonl>          folded stacks (inferno/flamegraph.pl input) on stdout
  diff [-json] [-threshold f] [-min-ns n] <old.jsonl> <new.jsonl>
                                             phase self-time comparison; exit 1 on breach
  cat [-json] [-name substr] [-kind k] <trace.jsonl>
                                             filter and pretty-print raw events
  bench-diff [-json] [-tol f] [-tol-nodes f] [-min-time-ns n] [-prune-drop f] <old.json> <new.json>
                                             compare benchmark snapshots; exit 1 on breach
  promcheck [-json] <metrics.txt>            validate a Prometheus /metrics scrape; exit 1 if invalid
  census [-json] [-top n] [-cache n] [-strict] <explain.jsonl>
                                             component recurrence census over licm-explain/1 records;
                                             -strict exits 1 on schema drift
  load [-json] [-strict] <run.jsonl>         workload-run (licm-load/1) summary; -strict exits 1 on
                                             schema drift or consistency violations
  load -diff [-tol f] [-min-latency-ns n] [-qerr-slack f] <old.jsonl> <new.jsonl>
                                             compare workload runs (latency, tightness, correctness);
                                             exit 1 on breach
  requests [-json] [-id rid] [-strict] <requests.json>
                                             render a flight-recorder dump (licm-requests/1, from
                                             /debug/licm/requests or licmd -requests-dump); -id shows
                                             one entry's span tree; -strict exits 1 when panicked or
                                             deadline-violated entries are retained
  requests -diff <old.json> <new.json>       compare dumps; exit 1 when panicked or deadline-violated
                                             retention grew

"-" reads the input from stdin. Exit codes: 0 clean, 1 threshold breached or
exposition invalid, 2 bad input. All subcommands take -log-level and -log-format.
`)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return cliexit.Usage
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return cmdSummary(rest, stdin, stdout, stderr)
	case "flame":
		return cmdFlame(rest, stdin, stdout, stderr)
	case "diff":
		return cmdDiff(rest, stdin, stdout, stderr)
	case "cat":
		return cmdCat(rest, stdin, stdout, stderr)
	case "bench-diff":
		return cmdBenchDiff(rest, stdin, stdout, stderr)
	case "promcheck":
		return cmdPromCheck(rest, stdin, stdout, stderr)
	case "census":
		return cmdCensus(rest, stdin, stdout, stderr)
	case "load":
		return cmdLoad(rest, stdin, stdout, stderr)
	case "requests":
		return cmdRequests(rest, stdin, stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stderr)
		return cliexit.OK
	default:
		fmt.Fprintf(stderr, "licmtrace: unknown command %q\n", cmd)
		usage(stderr)
		return cliexit.Usage
	}
}

// addLogFlags registers the shared -log-level/-log-format flags on a
// subcommand's FlagSet; the returned options build the logger after
// Parse.
func addLogFlags(fs *flag.FlagSet) *obs.LogOptions {
	lo := &obs.LogOptions{}
	lo.RegisterFlags(fs)
	return lo
}

// subLog builds a subcommand's logger from its parsed log flags; a bad
// value is a usage error (the caller returns 2).
func subLog(lo *obs.LogOptions, stderr io.Writer) (*slog.Logger, bool) {
	logger, err := lo.NewLogger(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return nil, false
	}
	return logger, true
}

// open returns the named input, with "-" meaning stdin.
func open(path string, stdin io.Reader) (io.Reader, func() error, error) {
	if path == "-" {
		return stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// readTraceFile loads a trace, optionally restricted to the events of
// one served request (the request_id stamp the licmd serving path puts
// on every event a request produces).
func readTraceFile(path string, stdin io.Reader, requestID string) (*tracean.Trace, error) {
	r, closeFn, err := open(path, stdin)
	if err != nil {
		return nil, err
	}
	defer closeFn() //nolint:errcheck // read-only
	if requestID != "" {
		return tracean.ReadTraceFiltered(r, tracean.RequestFilter(requestID))
	}
	return tracean.ReadTrace(r)
}

// dur renders nanoseconds with time.Duration's formatting, rounded for
// table readability.
func dur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func cmdSummary(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the summary as JSON")
	request := fs.String("request", "", "restrict to the events of one served request id")
	logOpts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: licmtrace summary [-json] [-request id] <trace.jsonl>")
		return cliexit.Usage
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return cliexit.Usage
	}
	t, err := readTraceFile(fs.Arg(0), stdin, *request)
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return cliexit.Usage
	}
	logger.Debug("trace loaded", "path", fs.Arg(0), "events", len(t.Events), "spans", t.NumSpans())
	rollups := t.Rollups()
	path := t.CriticalPath()
	hists := histEvents(t)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Schema       string             `json:"schema,omitempty"`
			Events       int                `json:"events"`
			Spans        int                `json:"spans"`
			WallNs       int64              `json:"wall_ns"`
			Rollups      []tracean.Rollup   `json:"rollups"`
			CriticalPath []tracean.PathStep `json:"critical_path"`
			Histograms   []map[string]any   `json:"histograms,omitempty"`
		}{t.Schema, len(t.Events), t.NumSpans(), t.WallNs, rollups, path, hists}); err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return cliexit.Usage
		}
		return cliexit.OK
	}
	schema := t.Schema
	if schema == "" {
		schema = "unversioned"
	}
	fmt.Fprintf(stdout, "trace: %d events, %d spans, wall %s, schema %s\n\n",
		len(t.Events), t.NumSpans(), dur(t.WallNs), schema)
	fmt.Fprintf(stdout, "%-24s %7s %12s %12s %12s %12s\n", "PHASE", "COUNT", "TOTAL", "SELF", "P50", "P99")
	for _, r := range rollups {
		fmt.Fprintf(stdout, "%-24s %7d %12s %12s %12s %12s\n",
			r.Name, r.Count, dur(r.TotalNs), dur(r.SelfNs), dur(r.P50Ns), dur(r.P99Ns))
	}
	if len(path) > 0 {
		fmt.Fprintf(stdout, "\ncritical path:\n")
		for i, s := range path {
			fmt.Fprintf(stdout, "  %s%s %s (self %s)\n", strings.Repeat("  ", i), s.Name, dur(s.DurNs), dur(s.SelfNs))
		}
	}
	if len(hists) > 0 {
		fmt.Fprintf(stdout, "\nsolve-latency histograms:\n")
		for _, h := range hists {
			fmt.Fprintf(stdout, "  %-16v n=%-8v mean=%-10s p50<%-10s p99<%s\n",
				h["hist"], h["count"], dur(attrNs(h, "mean")), dur(attrNs(h, "p50")), dur(attrNs(h, "p99")))
		}
	}
	return cliexit.OK
}

// histEvents extracts the last solver.hist event per histogram name
// (the solver emits cumulative snapshots at the end of every solve, so
// the last one carries the run's totals).
func histEvents(t *tracean.Trace) []map[string]any {
	last := map[string]map[string]any{}
	var order []string
	for _, e := range t.Events {
		if e.Kind != obs.KindEvent || e.Name != "solver.hist" {
			continue
		}
		name, _ := e.Attrs["hist"].(string)
		if name == "" {
			continue
		}
		if _, seen := last[name]; !seen {
			order = append(order, name)
		}
		last[name] = e.Attrs
	}
	out := make([]map[string]any, 0, len(order))
	for _, n := range order {
		out = append(out, last[n])
	}
	return out
}

// attrNs reads a numeric attr as nanoseconds.
func attrNs(attrs map[string]any, key string) int64 {
	switch v := attrs[key].(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}

func cmdFlame(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace flame", flag.ContinueOnError)
	fs.SetOutput(stderr)
	request := fs.String("request", "", "restrict to the events of one served request id")
	logOpts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: licmtrace flame [-request id] <trace.jsonl>  (folded stacks on stdout)")
		return cliexit.Usage
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return cliexit.Usage
	}
	t, err := readTraceFile(fs.Arg(0), stdin, *request)
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return cliexit.Usage
	}
	logger.Debug("trace loaded", "path", fs.Arg(0), "events", len(t.Events), "spans", t.NumSpans())
	if err := t.FoldedStacks(stdout); err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return cliexit.Usage
	}
	return cliexit.OK
}

func cmdDiff(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the report as JSON")
	defOpts := tracean.DefaultDiffOptions()
	threshold := fs.Float64("threshold", defOpts.Threshold, "allowed relative self-time growth per phase (0.5 = +50%)")
	minNs := fs.Int64("min-ns", defOpts.MinNs, "noise floor: phases below this self time never breach")
	logOpts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil || fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: licmtrace diff [-json] [-threshold f] [-min-ns n] <old.jsonl> <new.jsonl>")
		return cliexit.Usage
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return cliexit.Usage
	}
	oldT, err := readTraceFile(fs.Arg(0), stdin, "")
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %s: %v\n", fs.Arg(0), err)
		return cliexit.Usage
	}
	newT, err := readTraceFile(fs.Arg(1), stdin, "")
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %s: %v\n", fs.Arg(1), err)
		return cliexit.Usage
	}
	logger.Debug("traces loaded", "old_events", len(oldT.Events), "new_events", len(newT.Events))
	rep := tracean.Diff(oldT, newT, tracean.DiffOptions{Threshold: *threshold, MinNs: *minNs})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return cliexit.Usage
		}
	} else {
		fmt.Fprintf(stdout, "%-24s %12s %12s %9s\n", "PHASE", "OLD SELF", "NEW SELF", "CHANGE")
		for _, d := range rep.Deltas {
			mark := ""
			if d.Breach {
				mark = "  << breach"
			}
			fmt.Fprintf(stdout, "%-24s %12s %12s %9s%s\n", d.Name, dur(d.OldSelfNs), dur(d.NewSelfNs), relStr(d.Rel), mark)
		}
		if rep.Breached {
			fmt.Fprintf(stdout, "\nREGRESSION: at least one phase grew more than %+.0f%% (floor %s)\n",
				rep.Threshold*100, dur(rep.MinNs))
		} else {
			fmt.Fprintf(stdout, "\nok: no phase grew more than %+.0f%% (floor %s)\n", rep.Threshold*100, dur(rep.MinNs))
		}
	}
	if rep.Breached {
		return cliexit.Findings
	}
	return cliexit.OK
}

func relStr(rel float64) string {
	if math.IsInf(rel, 1) {
		return "new"
	}
	return fmt.Sprintf("%+.0f%%", rel*100)
}

func cmdCat(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace cat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "re-emit matching events as JSON lines")
	name := fs.String("name", "", "keep only events whose name contains this substring")
	kind := fs.String("kind", "", "keep only events of this kind (span_start, span_end, event, progress)")
	logOpts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: licmtrace cat [-json] [-name substr] [-kind k] <trace.jsonl>")
		return cliexit.Usage
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return cliexit.Usage
	}
	in, closeFn, err := open(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return cliexit.Usage
	}
	defer closeFn() //nolint:errcheck // read-only
	rd := tracean.NewReader(in)
	kept, total := 0, 0
	var sink obs.Sink
	var jsonl *obs.JSONLSink
	if *asJSON {
		jsonl = obs.NewJSONLSink(stdout)
		sink = jsonl
	} else {
		sink = obs.NewTextSink(stdout)
	}
	for {
		e, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return cliexit.Usage
		}
		total++
		if *name != "" && !strings.Contains(e.Name, *name) {
			continue
		}
		if *kind != "" && string(e.Kind) != *kind {
			continue
		}
		kept++
		sink.Emit(e)
	}
	logger.Debug("events filtered", "kept", kept, "total", total)
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return cliexit.Usage
		}
	}
	return cliexit.OK
}

func cmdBenchDiff(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace bench-diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the report as JSON")
	def := bench.DefaultSnapshotTol()
	tolTime := fs.Float64("tol", def.TimeFactor, "allowed l_solve_ns growth factor per cell")
	tolNodes := fs.Float64("tol-nodes", def.NodesFactor, "allowed nodes growth factor per cell")
	minTime := fs.Int64("min-time-ns", def.MinTimeNs, "noise floor: solve times below this (old side) are not compared")
	pruneDrop := fs.Float64("prune-drop", def.PruneDrop, "allowed absolute drop in prune_ratio")
	logOpts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil || fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: licmtrace bench-diff [-json] [-tol f] [-tol-nodes f] [-min-time-ns n] [-prune-drop f] <old.json> <new.json>")
		return cliexit.Usage
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return cliexit.Usage
	}
	read := func(path string) (bench.Snapshot, error) {
		r, closeFn, err := open(path, stdin)
		if err != nil {
			return bench.Snapshot{}, err
		}
		defer closeFn() //nolint:errcheck // read-only
		return bench.ReadSnapshot(r)
	}
	oldS, err := read(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %s: %v\n", fs.Arg(0), err)
		return cliexit.Usage
	}
	newS, err := read(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %s: %v\n", fs.Arg(1), err)
		return cliexit.Usage
	}
	logger.Debug("snapshots loaded", "old_cells", len(oldS.Cells), "new_cells", len(newS.Cells))
	d := bench.DiffSnapshots(oldS, newS, bench.SnapshotTol{
		TimeFactor: *tolTime, NodesFactor: *tolNodes, MinTimeNs: *minTime, PruneDrop: *pruneDrop,
	})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return cliexit.Usage
		}
	} else {
		fmt.Fprintf(stdout, "old: %s (%s, %s/%s)  new: %s (%s, %s/%s)\n",
			oldS.Label, oldS.GoVersion, oldS.GOOS, oldS.GOARCH,
			newS.Label, newS.GoVersion, newS.GOOS, newS.GOARCH)
		for _, w := range d.Warnings {
			fmt.Fprintf(stdout, "warning: %s\n", w)
		}
		fmt.Fprintf(stdout, "%-28s %12s %12s %10s %10s\n", "CELL", "OLD SOLVE", "NEW SOLVE", "OLD NODES", "NEW NODES")
		for _, c := range d.Deltas {
			fmt.Fprintf(stdout, "%-28s %12s %12s %10d %10d\n", c.Key, dur(c.OldSolveNs), dur(c.NewSolveNs), c.OldNodes, c.NewNodes)
			for _, b := range c.Breaches {
				fmt.Fprintf(stdout, "    << %s\n", b)
			}
		}
		for _, k := range d.OnlyOld {
			fmt.Fprintf(stdout, "%-28s missing from new snapshot  << breach\n", k)
		}
		for _, k := range d.OnlyNew {
			fmt.Fprintf(stdout, "%-28s new cell (not in baseline)\n", k)
		}
		if d.Breached {
			fmt.Fprintf(stdout, "\nREGRESSION: tolerance breached (time x%.2g, nodes x%.2g, prune drop %.2g)\n",
				d.Tol.TimeFactor, d.Tol.NodesFactor, d.Tol.PruneDrop)
		} else {
			fmt.Fprintf(stdout, "\nok: %d cell(s) within tolerance\n", len(d.Deltas))
		}
	}
	if d.Breached {
		return cliexit.Findings
	}
	return cliexit.OK
}

func cmdPromCheck(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the report as JSON")
	logOpts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: licmtrace promcheck [-json] <metrics.txt>")
		return cliexit.Usage
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return cliexit.Usage
	}
	in, closeFn, err := open(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return cliexit.Usage
	}
	defer closeFn() //nolint:errcheck // read-only
	fams, err := obs.ParseProm(in)
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return cliexit.Usage
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
		logger.Debug("metric family", "name", f.Name, "type", f.Type, "samples", len(f.Samples))
	}
	vErr := obs.ValidateProm(fams)
	if *asJSON {
		rep := struct {
			Families int    `json:"families"`
			Samples  int    `json:"samples"`
			Valid    bool   `json:"valid"`
			Error    string `json:"error,omitempty"`
		}{len(fams), samples, vErr == nil, ""}
		if vErr != nil {
			rep.Error = vErr.Error()
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return cliexit.Usage
		}
	} else if vErr != nil {
		fmt.Fprintf(stdout, "invalid exposition: %v\n", vErr)
	} else {
		fmt.Fprintf(stdout, "ok: %d families, %d samples\n", len(fams), samples)
	}
	if vErr != nil {
		return cliexit.Findings
	}
	return cliexit.OK
}
