package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"licm/internal/explain"
)

// cmdCensus aggregates licm-explain/1 records (licmq -explain-json,
// licmexp -explain-json) into the workload-level component census:
// distinct-vs-total fingerprint counts, the recurrence histogram, the
// simulated component-cache hit rate, and the costliest fingerprints
// by cumulative solve time — the empirical workload profile the
// ROADMAP's component solve cache is sized from.
func cmdCensus(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace census", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the census as JSON")
	topK := fs.Int("top", 10, "keep this many fingerprints in the cost ranking (0 = all)")
	cache := fs.Int("cache", 0, "also simulate an LRU component cache with this many entries")
	strictMode := fs.Bool("strict", false, "schema guard: reject unknown fields, wrong schema tags and malformed reports (exit 1)")
	logOpts := addLogFlags(fs)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: licmtrace census [-json] [-top n] [-cache n] [-strict] <explain.jsonl>")
		return 2
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return 2
	}
	in, closeFn, err := open(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return 2
	}
	data, err := io.ReadAll(in)
	closeFn() //nolint:errcheck // read-only
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return 2
	}
	// Unreadable JSON is bad input (2); a record that parses but
	// violates the licm-explain/1 contract is a schema breach (1)
	// under -strict, mirroring promcheck's invalid-exposition exit.
	reps, err := explain.ReadJSONL(bytes.NewReader(data), false)
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %v\n", err)
		return 2
	}
	if *strictMode {
		if _, err := explain.ReadJSONL(bytes.NewReader(data), true); err != nil {
			fmt.Fprintf(stderr, "licmtrace: schema breach: %v\n", err)
			return 1
		}
	}
	logger.Debug("explain records loaded", "path", fs.Arg(0), "reports", len(reps))

	census := explain.NewCensus()
	for i := range reps {
		census.Observe(&reps[i])
	}
	s := census.Summarize(*topK)
	type lruJSON struct {
		Capacity int     `json:"capacity"`
		Hits     int64   `json:"hits"`
		HitRate  float64 `json:"hit_rate"`
	}
	var lru *lruJSON
	if *cache > 0 {
		hits, rate := census.SimulateLRU(*cache)
		lru = &lruJSON{Capacity: *cache, Hits: hits, HitRate: rate}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			explain.Summary
			LRU *lruJSON `json:"lru,omitempty"`
		}{s, lru}); err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return 2
		}
		return 0
	}

	fmt.Fprintf(stdout, "census: %d queries, %d runs, %d components, %d distinct fingerprints\n",
		s.Queries, s.Runs, s.Components, s.Distinct)
	fmt.Fprintf(stdout, "simulated cache hit rate: %.1f%% (unbounded: every recurrence hits)\n", 100*s.HitRate)
	if lru != nil {
		fmt.Fprintf(stdout, "simulated LRU(%d) hit rate: %.1f%% (%d/%d hits)\n",
			lru.Capacity, 100*lru.HitRate, lru.Hits, s.Components)
	}
	fmt.Fprintf(stdout, "total component solve time: %s\n", dur(s.TotalSolveNs))
	if len(s.Recurrence) > 0 {
		fmt.Fprintf(stdout, "recurrence:")
		for _, b := range s.Recurrence {
			fmt.Fprintf(stdout, " %dx:%d", b.Times, b.Fingerprints)
		}
		fmt.Fprintln(stdout, "  (occurrences : distinct fingerprints)")
	}
	if len(s.Top) > 0 {
		fmt.Fprintf(stdout, "\n%-18s %6s %5s %5s %10s %12s %7s\n", "FINGERPRINT", "COUNT", "VARS", "CONS", "NODES", "SOLVE", "SHARE")
		for _, f := range s.Top {
			share := 0.0
			if s.TotalSolveNs > 0 {
				share = float64(f.SolveNs) / float64(s.TotalSolveNs)
			}
			fmt.Fprintf(stdout, "%-18s %6d %5d %5d %10d %12s %6.1f%%\n",
				f.Fingerprint, f.Count, f.Vars, f.Cons, f.Nodes, dur(f.SolveNs), 100*share)
		}
	}
	return 0
}
