package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"licm/internal/cliexit"
	"licm/internal/workload"
)

// cmdLoad reads licm-load/1 workload runs (licmload): a single file
// gets a summary (with -strict as the schema gate), two files get a
// regression diff against the committed BENCH_workload.json baseline.
func cmdLoad(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the summary or diff as JSON")
	strictMode := fs.Bool("strict", false, "schema guard: reject unknown fields and semantic inconsistencies (exit 1)")
	diffMode := fs.Bool("diff", false, "compare two runs: licmtrace load -diff <old> <new>; exit 1 on breach")
	def := workload.DefaultLoadTol()
	tolLat := fs.Float64("tol", def.LatencyFactor, "allowed latency-quantile growth factor (diff)")
	minLat := fs.Int64("min-latency-ns", def.MinLatencyNs, "noise floor: latency quantiles below this never breach (diff)")
	qerrSlack := fs.Float64("qerr-slack", def.QerrSlack, "allowed absolute qerr-quantile growth (diff)")
	logOpts := addLogFlags(fs)
	usageLine := "usage: licmtrace load [-json] [-strict] <run.jsonl> | licmtrace load -diff [-tol f] [-min-latency-ns n] [-qerr-slack f] <old.jsonl> <new.jsonl>"
	if err := fs.Parse(args); err != nil {
		fmt.Fprintln(stderr, usageLine)
		return cliexit.Usage
	}
	wantArgs := 1
	if *diffMode {
		wantArgs = 2
	}
	if fs.NArg() != wantArgs {
		fmt.Fprintln(stderr, usageLine)
		return cliexit.Usage
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return cliexit.Usage
	}
	read := func(path string, strict bool) (*workload.Run, int) {
		in, closeFn, err := open(path, stdin)
		if err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return nil, cliexit.Usage
		}
		data, err := io.ReadAll(in)
		closeFn() //nolint:errcheck // read-only
		if err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return nil, cliexit.Usage
		}
		// Unreadable input is bad input (2); a stream that parses but
		// violates the licm-load/1 contract — unknown fields or semantic
		// inconsistencies — is a schema breach (1) under -strict,
		// mirroring the census subcommand.
		run, err := workload.ReadRun(bytes.NewReader(data), false)
		if err != nil {
			fmt.Fprintf(stderr, "licmtrace: %s: %v\n", path, err)
			return nil, cliexit.Usage
		}
		if strict {
			if _, err := workload.ReadRun(bytes.NewReader(data), true); err != nil {
				fmt.Fprintf(stderr, "licmtrace: schema breach: %v\n", err)
				return nil, cliexit.Findings
			}
		}
		return run, cliexit.OK
	}

	if *diffMode {
		oldRun, code := read(fs.Arg(0), true)
		if code != cliexit.OK {
			return code
		}
		newRun, code := read(fs.Arg(1), true)
		if code != cliexit.OK {
			return code
		}
		logger.Debug("runs loaded", "old_queries", len(oldRun.Records), "new_queries", len(newRun.Records))
		d := workload.DiffRuns(oldRun, newRun, workload.LoadTol{
			LatencyFactor: *tolLat, MinLatencyNs: *minLat, QerrSlack: *qerrSlack,
		})
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Warnings []string `json:"warnings"`
				Breaches []string `json:"breaches"`
				OK       bool     `json:"ok"`
			}{d.Warnings, d.Breaches, d.OK()}); err != nil {
				fmt.Fprintf(stderr, "licmtrace: %v\n", err)
				return cliexit.Usage
			}
		} else {
			fmt.Fprintf(stdout, "old: %s (%d queries)  new: %s (%d queries)\n",
				runLabel(oldRun), len(oldRun.Records), runLabel(newRun), len(newRun.Records))
			for _, w := range d.Warnings {
				fmt.Fprintf(stdout, "warning: %s\n", w)
			}
			for _, b := range d.Breaches {
				fmt.Fprintf(stdout, "breach: %s\n", b)
			}
			if d.OK() {
				fmt.Fprintf(stdout, "ok: no regression (latency factor %.2g, qerr slack %.2g)\n",
					*tolLat, *qerrSlack)
			} else {
				fmt.Fprintf(stdout, "REGRESSION: %d breach(es)\n", len(d.Breaches))
			}
		}
		if !d.OK() {
			return cliexit.Findings
		}
		return cliexit.OK
	}

	run, code := read(fs.Arg(0), *strictMode)
	if code != cliexit.OK {
		return code
	}
	logger.Debug("run loaded", "path", fs.Arg(0), "queries", len(run.Records))
	s := run.Summary
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintf(stderr, "licmtrace: %v\n", err)
			return cliexit.Usage
		}
		return cliexit.OK
	}
	fmt.Fprintf(stdout, "workload run: %s — %d queries over %s(k=%d), seed %d, %s/%s/%s\n",
		runLabel(run), s.Queries, s.Scheme, s.K, s.Seed, s.GoVersion, s.GOOS, s.GOARCH)
	fmt.Fprintf(stdout, "quality: exact %d, proven-interval %d, sampled %d, failed %d (proven %d, exact refs %d)\n",
		s.ByQuality["exact"], s.ByQuality["proven-interval"], s.ByQuality["sampled"], s.ByQuality["failed"],
		s.Proven, s.ExactRef)
	fmt.Fprintf(stdout, "latency: p50 %s, p95 %s, p99 %s (wall %s)\n",
		dur(s.LatencyP50Ns), dur(s.LatencyP95Ns), dur(s.LatencyP99Ns), dur(s.WallNs))
	fmt.Fprintf(stdout, "tightness: qerr p50 %.4g, p90 %.4g, max %.4g\n", s.QerrP50, s.QerrP90, s.QerrMax)
	fmt.Fprintf(stdout, "components: %d, distinct fingerprints %d, cache hit rate %.1f%%\n",
		s.Components, s.DistinctFingerprints, 100*s.CacheHitRate)
	if s.DeadlineNs > 0 {
		fmt.Fprintf(stdout, "deadline: %s per query\n", time.Duration(s.DeadlineNs))
	}
	if s.Violations > 0 {
		fmt.Fprintf(stdout, "VIOLATIONS: %d — proven bounds failed a ground-truth check:\n", s.Violations)
		for _, r := range run.Records {
			for _, v := range r.Violations {
				fmt.Fprintf(stdout, "  %s: %s\n", r.Name, v)
			}
		}
		return cliexit.Findings
	}
	fmt.Fprintf(stdout, "violations: 0\n")
	return cliexit.OK
}

// runLabel names a run for diff output.
func runLabel(run *workload.Run) string {
	if run.Summary != nil && run.Summary.Label != "" {
		return run.Summary.Label
	}
	return "(unlabeled)"
}
