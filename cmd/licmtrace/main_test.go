package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"licm/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// runCase executes one licmtrace invocation against the testdata
// fixtures and compares stdout to the named golden file.
func runCase(t *testing.T, args []string, wantCode int, golden string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(""), &stdout, &stderr)
	if code != wantCode {
		t.Fatalf("licmtrace %v: exit %d, want %d\nstderr: %s", args, code, wantCode, stderr.String())
	}
	if golden == "" {
		return
	}
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create golden files)", err)
	}
	if got := stdout.String(); got != string(want) {
		t.Errorf("licmtrace %v: output differs from %s\n--- got ---\n%s--- want ---\n%s", args, path, got, want)
	}
}

func TestSummaryGolden(t *testing.T) {
	runCase(t, []string{"summary", "testdata/fixture.jsonl"}, 0, "summary.golden")
}

func TestSummaryJSONGolden(t *testing.T) {
	runCase(t, []string{"summary", "-json", "testdata/fixture.jsonl"}, 0, "summary_json.golden")
}

func TestFlameGolden(t *testing.T) {
	runCase(t, []string{"flame", "testdata/fixture.jsonl"}, 0, "flame.golden")
}

func TestCatGolden(t *testing.T) {
	runCase(t, []string{"cat", "-name", "solver.search", "testdata/fixture.jsonl"}, 0, "cat.golden")
}

// TestDiffIdenticalIsClean: diffing a trace against itself must exit 0
// (the CI gate's no-false-positive contract).
func TestDiffIdenticalIsClean(t *testing.T) {
	runCase(t, []string{"diff", "testdata/fixture.jsonl", "testdata/fixture.jsonl"}, 0, "")
}

// TestDiffRegressionBreaches: the inflated-search fixture must trip the
// default threshold and exit 1.
func TestDiffRegressionBreaches(t *testing.T) {
	runCase(t, []string{"diff", "testdata/fixture.jsonl", "testdata/regression.jsonl"}, 1, "diff.golden")
}

func TestDiffThresholdFlagRaisesBar(t *testing.T) {
	// search grew 10ms -> 40ms = +300%; a 4x (=+300%) threshold is not
	// exceeded (strictly greater breaches), so the diff passes.
	runCase(t, []string{"diff", "-threshold", "3.0", "testdata/fixture.jsonl", "testdata/regression.jsonl"}, 0, "")
}

func TestBenchDiffIdenticalIsClean(t *testing.T) {
	runCase(t, []string{"bench-diff", "testdata/bench_old.json", "testdata/bench_old.json"}, 0, "")
}

func TestBenchDiffRegressionBreaches(t *testing.T) {
	runCase(t, []string{"bench-diff", "testdata/bench_old.json", "testdata/bench_regressed.json"}, 1, "bench_diff.golden")
}

func TestBenchDiffJSON(t *testing.T) {
	runCase(t, []string{"bench-diff", "-json", "testdata/bench_old.json", "testdata/bench_regressed.json"}, 1, "bench_diff_json.golden")
}

func TestStdinDash(t *testing.T) {
	data, err := os.ReadFile("testdata/fixture.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"summary", "-"}, bytes.NewReader(data), &stdout, &stderr); code != 0 {
		t.Fatalf("summary -: exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "solver.search") {
		t.Errorf("summary over stdin missing rollup table:\n%s", stdout.String())
	}
}

// TestPromCheck drives the /metrics validator the CI telemetry-smoke
// job uses: a real registry rendering passes, a broken histogram fails
// with exit 1, and unreadable input is exit 2.
func TestPromCheck(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("nodes").Add(7)
	reg.Gauge("depth").Set(3)
	for _, v := range []int64{1, 5, 900} {
		reg.Histogram("lat").Observe(v)
	}
	var exp bytes.Buffer
	if err := obs.WritePrometheus(&exp, reg); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"promcheck", "-"}, bytes.NewReader(exp.Bytes()), &stdout, &stderr); code != 0 {
		t.Fatalf("promcheck on real exposition: exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok: ") {
		t.Errorf("unexpected promcheck output: %s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"promcheck", "-json", "-"}, bytes.NewReader(exp.Bytes()), &stdout, &stderr); code != 0 {
		t.Fatalf("promcheck -json: exit %d", code)
	}
	if !strings.Contains(stdout.String(), `"valid": true`) {
		t.Errorf("unexpected -json output: %s", stdout.String())
	}

	// A histogram missing its +Inf bucket parses but does not validate.
	broken := "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"
	stdout.Reset()
	if code := run([]string{"promcheck", "-"}, strings.NewReader(broken), &stdout, &stderr); code != 1 {
		t.Fatalf("promcheck on broken exposition: exit %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "invalid exposition") {
		t.Errorf("unexpected output for broken exposition: %s", stdout.String())
	}
}

func TestBadInputsExit2(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"summary"},
		{"summary", "testdata/no_such_file.jsonl"},
		{"diff", "testdata/fixture.jsonl"},
		{"bench-diff", "testdata/fixture.jsonl", "testdata/bench_old.json"}, // not a snapshot
		{"promcheck"},
		{"promcheck", "testdata/no_such_file.txt"},
		{"promcheck", "-log-level", "loudest", "-"},
		{"summary", "-log-format", "yaml", "testdata/fixture.jsonl"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, strings.NewReader(""), &stdout, &stderr); code != 2 {
			t.Errorf("licmtrace %v: exit %d, want 2", args, code)
		}
	}
}

func TestHelpExitsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"help"}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Errorf("help: exit %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "bench-diff") {
		t.Errorf("help text missing commands:\n%s", stderr.String())
	}
}

// The census fixture is hand-checked: 3 queries, 5 runs, 12 component
// occurrences over 4 distinct fingerprints (A 5x, B 3x, C 3x, D 1x),
// so the unbounded simulated hit rate is 8/12 = 66.7% and an LRU of
// capacity 2 over the access sequence A,B,A,B,A,C,A,C,A,B,C,D scores
// 6/12 = 50.0%.
func TestCensusGolden(t *testing.T) {
	runCase(t, []string{"census", "testdata/explain_fixture.jsonl"}, 0, "census.golden")
}

func TestCensusJSONGolden(t *testing.T) {
	runCase(t, []string{"census", "-json", "-top", "3", "-cache", "2", "testdata/explain_fixture.jsonl"}, 0, "census_json.golden")
}

func TestCensusLRUGolden(t *testing.T) {
	runCase(t, []string{"census", "-cache", "2", "testdata/explain_fixture.jsonl"}, 0, "census_lru.golden")
}

// TestCensusStrictSchemaDrift: the drift fixture carries an unknown
// field; -strict must flag it as a schema breach (exit 1) while the
// default lax mode tolerates it.
func TestCensusStrictSchemaDrift(t *testing.T) {
	runCase(t, []string{"census", "-strict", "testdata/explain_drift.jsonl"}, 1, "")
	runCase(t, []string{"census", "testdata/explain_drift.jsonl"}, 0, "")
}

// TestCensusBadInput: unreadable or unparsable input is exit 2,
// distinct from the schema breach (1).
func TestCensusBadInput(t *testing.T) {
	runCase(t, []string{"census", "testdata/nope.jsonl"}, 2, "")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"census", "-"}, strings.NewReader("{broken\n"), &stdout, &stderr); code != 2 {
		t.Fatalf("malformed stdin: exit %d, want 2\nstderr: %s", code, stderr.String())
	}
}

// The load fixture is hand-checked: 3 queries (2 exact, 1
// proven-interval), latency p50 8ms / p95 60ms, qerr p90 2, no
// violations. The regressed variant changes q1-count#0's proven
// bounds and quality, inflates q1-sum#1's latency past the 3x gate,
// and adds a consistency violation to q3-count#2 — five breaches.
func TestLoadSummaryGolden(t *testing.T) {
	runCase(t, []string{"load", "testdata/load_fixture.jsonl"}, 0, "load.golden")
}

func TestLoadSummaryJSONGolden(t *testing.T) {
	runCase(t, []string{"load", "-json", "testdata/load_fixture.jsonl"}, 0, "load_json.golden")
}

func TestLoadViolationsExit1(t *testing.T) {
	runCase(t, []string{"load", "testdata/load_regressed.jsonl"}, 1, "")
}

func TestLoadDiffIdenticalIsClean(t *testing.T) {
	runCase(t, []string{"load", "-diff", "testdata/load_fixture.jsonl", "testdata/load_fixture.jsonl"}, 0, "")
}

func TestLoadDiffRegressionGolden(t *testing.T) {
	runCase(t, []string{"load", "-diff", "testdata/load_fixture.jsonl", "testdata/load_regressed.jsonl"}, 1, "load_diff.golden")
}

func TestLoadDiffJSONGolden(t *testing.T) {
	runCase(t, []string{"load", "-diff", "-json", "testdata/load_fixture.jsonl", "testdata/load_regressed.jsonl"}, 1, "load_diff_json.golden")
}

// TestLoadStrictSchemaDrift: an unknown field passes the lax reader
// but is a schema breach (exit 1) under -strict; truly malformed
// input stays exit 2.
func TestLoadStrictSchemaDrift(t *testing.T) {
	data, err := os.ReadFile("testdata/load_fixture.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	drifted := strings.Replace(string(data), `"vars":180`, `"vars":180,"bogus":1`, 1)
	if drifted == string(data) {
		t.Fatal("fixture drift injection failed")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"load", "-strict", "-"}, strings.NewReader(drifted), &stdout, &stderr); code != 1 {
		t.Fatalf("strict load over drifted stream: exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"load", "-"}, strings.NewReader(drifted), &stdout, &stderr); code != 0 {
		t.Fatalf("lax load over drifted stream: exit %d, want 0\nstderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"load", "-strict", "testdata/load_fixture.jsonl"}, &bytes.Buffer{}, &stdout, &stderr); code != 0 {
		t.Fatalf("strict load over clean fixture: exit %d, want 0\nstderr: %s", code, stderr.String())
	}
}

func TestLoadBadInputsExit2(t *testing.T) {
	cases := [][]string{
		{"load"},
		{"load", "testdata/no_such_file.jsonl"},
		{"load", "-diff", "testdata/load_fixture.jsonl"},
		{"load", "testdata/fixture.jsonl"}, // a trace, not a licm-load stream
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, strings.NewReader(""), &stdout, &stderr); code != 2 {
			t.Errorf("licmtrace %v: exit %d, want 2", args, code)
		}
	}
}

// TestCensusStrictAcceptsLiveOutput closes the producer/consumer
// loop: a census over a record the explain package itself wrote must
// pass -strict.
func TestCensusStrictAcceptsLiveOutput(t *testing.T) {
	data, err := os.ReadFile("testdata/explain_fixture.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"census", "-strict", "-"}, bytes.NewReader(data), &stdout, &stderr); code != 0 {
		t.Fatalf("strict census over fixture: exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "4 distinct fingerprints") {
		t.Errorf("census output missing distinct count:\n%s", stdout.String())
	}
}
