package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"licm/internal/cliexit"
	"licm/internal/obs"
	"licm/internal/serve"
)

// cmdRequests renders and diffs flight-recorder dumps (licm-requests/1,
// from GET /debug/licm/requests or licmd -requests-dump).
func cmdRequests(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmtrace requests", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the report as JSON")
	id := fs.String("id", "", "show one retained entry (request id) with its span tree")
	strict := fs.Bool("strict", false, "exit 1 when panicked or deadline-violated entries are retained")
	diff := fs.Bool("diff", false, "compare two dumps; exit 1 when bad-outcome retention grew")
	logOpts := addLogFlags(fs)
	want := 1
	usageLine := "usage: licmtrace requests [-json] [-id rid] [-strict] <requests.json>  |  licmtrace requests -diff <old.json> <new.json>"
	if err := fs.Parse(args); err != nil {
		fmt.Fprintln(stderr, usageLine)
		return cliexit.Usage
	}
	if *diff {
		want = 2
	}
	if fs.NArg() != want {
		fmt.Fprintln(stderr, usageLine)
		return cliexit.Usage
	}
	logger, ok := subLog(logOpts, stderr)
	if !ok {
		return cliexit.Usage
	}
	read := func(path string) (*serve.RequestsDump, error) {
		r, closeFn, err := open(path, stdin)
		if err != nil {
			return nil, err
		}
		defer closeFn() //nolint:errcheck // read-only
		return serve.ReadDump(r)
	}
	d, err := read(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "licmtrace: %s: %v\n", fs.Arg(0), err)
		return cliexit.Usage
	}
	logger.Debug("dump loaded", "path", fs.Arg(0), "entries", len(d.Entries), "depth", d.Depth)

	if *diff {
		nd, err := read(fs.Arg(1))
		if err != nil {
			fmt.Fprintf(stderr, "licmtrace: %s: %v\n", fs.Arg(1), err)
			return cliexit.Usage
		}
		return diffDumps(d, nd, *asJSON, stdout)
	}
	if *id != "" {
		return showEntry(d, *id, *asJSON, stdout, stderr)
	}
	return renderDump(d, *asJSON, *strict, stdout)
}

// badBadges are the retention classes that mark a genuinely bad
// serving outcome (degraded and shed are expected under pressure;
// panics and blown deadlines are not).
var badBadges = []string{serve.BadgePanicked, serve.BadgeDeadlineViolated}

// badgeCounts tallies retained entries per badge class.
func badgeCounts(d *serve.RequestsDump) map[string]int {
	c := map[string]int{}
	for i := range d.Entries {
		for _, b := range d.Entries[i].Badges {
			c[b]++
		}
	}
	return c
}

func renderDump(d *serve.RequestsDump, asJSON, strict bool, stdout io.Writer) int {
	counts := badgeCounts(d)
	bad := 0
	for _, b := range badBadges {
		bad += counts[b]
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Schema  string         `json:"schema"`
			Depth   int            `json:"depth"`
			Entries int            `json:"entries"`
			Badges  map[string]int `json:"badges"`
			Bad     int            `json:"bad_outcomes"`
		}{d.Schema, d.Depth, len(d.Entries), counts, bad}); err != nil {
			return cliexit.Usage
		}
	} else {
		fmt.Fprintf(stdout, "dump: %d retained entries (depth %d per class)\n\n", len(d.Entries), d.Depth)
		fmt.Fprintf(stdout, "%-24s %-14s %-16s %10s %10s  %s\n", "REQUEST", "QUERY", "QUALITY", "TOTAL", "QUEUE", "BADGES")
		for i := range d.Entries {
			e := &d.Entries[i]
			name, quality, queueNs := "", "", int64(0)
			if e.Response != nil {
				name = e.Response.Name
				quality = e.Response.Quality
				queueNs = e.Response.QueueNs
				if e.Response.Err != nil {
					quality = "error:" + string(e.Response.Err.Code)
				}
			}
			fmt.Fprintf(stdout, "%-24s %-14s %-16s %10s %10s  %s\n",
				e.RequestID, name, quality, dur(e.TotalNs), dur(queueNs),
				strings.Join(e.Badges, ","))
		}
		if len(counts) > 0 {
			var keys []string
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(stdout, "\nbadges:")
			for _, k := range keys {
				fmt.Fprintf(stdout, " %s=%d", k, counts[k])
			}
			fmt.Fprintln(stdout)
		}
		if strict && bad > 0 {
			fmt.Fprintf(stdout, "\nFINDINGS: %d entr%s with panicked or deadline-violated badges\n",
				bad, plural(bad))
		}
	}
	if strict && bad > 0 {
		return cliexit.Findings
	}
	return cliexit.OK
}

func showEntry(d *serve.RequestsDump, id string, asJSON bool, stdout, stderr io.Writer) int {
	for i := range d.Entries {
		e := &d.Entries[i]
		if e.RequestID != id {
			continue
		}
		if asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(e); err != nil {
				return cliexit.Usage
			}
			return cliexit.OK
		}
		fmt.Fprintf(stdout, "request %s  total %s  badges %s\n",
			e.RequestID, dur(e.TotalNs), strings.Join(e.Badges, ","))
		if e.DeadlineNs > 0 {
			fmt.Fprintf(stdout, "deadline %s\n", dur(e.DeadlineNs))
		}
		if e.Response != nil {
			r := e.Response
			if r.Err != nil {
				fmt.Fprintf(stdout, "response: error %s: %s\n", r.Err.Code, r.Err.Message)
			} else {
				fmt.Fprintf(stdout, "response: %s %s [%d, %d] latency %s queue %s\n",
					r.Name, r.Quality, r.Lb, r.Ub, dur(r.LatencyNs), dur(r.QueueNs))
			}
		}
		if e.Explain != nil {
			comps := 0
			for ri := range e.Explain.Runs {
				comps += len(e.Explain.Runs[ri].Components)
			}
			fmt.Fprintf(stdout, "explain: %d run(s), %d component(s)\n", len(e.Explain.Runs), comps)
		}
		if len(e.Events) > 0 {
			fmt.Fprintf(stdout, "span tree (%d events):\n", len(e.Events))
			writeSpanTree(stdout, e.Events)
		}
		return cliexit.OK
	}
	fmt.Fprintf(stderr, "licmtrace: request %q not in dump\n", id)
	return cliexit.Usage
}

// writeSpanTree renders a captured event slice as an indented tree.
// Depth follows span parentage (a request's capture can hold several
// roots: the serve.request envelope plus the solver's own root spans).
func writeSpanTree(w io.Writer, events []obs.Event) {
	depth := map[int64]int{}
	for _, e := range events {
		switch e.Kind {
		case obs.KindSpanStart:
			d := 0
			if e.Parent != 0 {
				d = depth[e.Parent] + 1
			}
			depth[e.Span] = d
			fmt.Fprintf(w, "  %s%s\n", strings.Repeat("  ", d), e.Name)
		case obs.KindSpanEnd:
			fmt.Fprintf(w, "  %s%s end (%s)\n",
				strings.Repeat("  ", depth[e.Span]), e.Name,
				time.Duration(e.DurNs).Round(time.Microsecond))
		}
	}
}

// diffDumps compares bad-outcome retention between two dumps: more
// panicked or deadline-violated entries than the baseline is a
// finding (the serve-smoke forensic gate's rule).
func diffDumps(oldD, newD *serve.RequestsDump, asJSON bool, stdout io.Writer) int {
	oc, nc := badgeCounts(oldD), badgeCounts(newD)
	var breaches []string
	for _, b := range badBadges {
		if nc[b] > oc[b] {
			breaches = append(breaches, fmt.Sprintf("%s retention grew %d -> %d", b, oc[b], nc[b]))
		}
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			OldEntries int            `json:"old_entries"`
			NewEntries int            `json:"new_entries"`
			OldBadges  map[string]int `json:"old_badges"`
			NewBadges  map[string]int `json:"new_badges"`
			Breaches   []string       `json:"breaches,omitempty"`
		}{len(oldD.Entries), len(newD.Entries), oc, nc, breaches}); err != nil {
			return cliexit.Usage
		}
	} else {
		fmt.Fprintf(stdout, "old: %d entries  new: %d entries\n", len(oldD.Entries), len(newD.Entries))
		all := map[string]bool{}
		for b := range oc {
			all[b] = true
		}
		for b := range nc {
			all[b] = true
		}
		var keys []string
		for b := range all {
			keys = append(keys, b)
		}
		sort.Strings(keys)
		for _, b := range keys {
			fmt.Fprintf(stdout, "  %-20s %4d -> %4d\n", b, oc[b], nc[b])
		}
		for _, b := range breaches {
			fmt.Fprintf(stdout, "<< %s\n", b)
		}
		if len(breaches) == 0 {
			fmt.Fprintln(stdout, "ok: no bad-outcome retention growth")
		}
	}
	if len(breaches) > 0 {
		return cliexit.Findings
	}
	return cliexit.OK
}

// plural returns the "y"/"ies" suffix tail for entry counts.
func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
