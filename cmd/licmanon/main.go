// Command licmanon anonymizes a transaction dataset with one of the
// four schemes of the paper's evaluation, verifies the scheme's
// privacy guarantee on the output, and reports how much uncertainty
// was introduced.
//
// Usage:
//
//	licmanon -in data.txt -scheme km -k 4 -m 2
//	licmanon -in data.txt -scheme k -k 8
//	licmanon -in data.txt -scheme bipartite -k 4 -l 4
//	licmanon -in data.txt -scheme suppress -minsupport 10
package main

import (
	"flag"
	"fmt"
	"os"

	"licm/internal/anon"
	"licm/internal/dataset"
	"licm/internal/encode"
	"licm/internal/hierarchy"
	"licm/internal/obs"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset (licmgen format; required)")
		scheme  = flag.String("scheme", "k", "anonymization scheme: km | k | bipartite | suppress")
		k       = flag.Int("k", 4, "anonymity parameter k")
		m       = flag.Int("m", 2, "subset size m (km scheme)")
		l       = flag.Int("l", 0, "item group size l (bipartite scheme; default k)")
		minSupp = flag.Int("minsupport", 10, "support threshold (suppress scheme)")
		fanout  = flag.Int("fanout", 8, "generalization hierarchy fanout")

		debugAddr = flag.String("debug-addr", "", "serve pprof, expvar, Prometheus /metrics and the /debug/licm dashboard on this address, e.g. :6060")
	)
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	logger, err := logOpts.NewLogger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, obs.NewRegistry())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/ — /debug/pprof/, /debug/vars, /metrics, /debug/licm\n", srv.Addr())
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	d, err := dataset.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *l == 0 {
		*l = *k
	}
	logger.Info("anonymizing dataset",
		"scheme", *scheme, "k", *k, "transactions", len(d.Trans), "items", len(d.Items))

	switch *scheme {
	case "km", "k":
		h, err := hierarchy.Build(len(d.Items), *fanout, nil)
		if err != nil {
			fatal(err)
		}
		var g *anon.Generalized
		if *scheme == "km" {
			g, err = anon.KmAnonymize(d, h, *k, *m)
			if err == nil {
				err = anon.CheckKm(g, *k, *m)
			}
		} else {
			g, err = anon.KAnonymize(d, h, *k)
			if err == nil {
				err = anon.CheckK(g, *k)
			}
		}
		if err != nil {
			fatal(err)
		}
		s := g.Stats()
		enc := encode.Generalized(g, d.Items)
		fmt.Printf("scheme=%s k=%d: guarantee verified\n", *scheme, *k)
		fmt.Printf("output: %d transactions, %d exact items, %d generalized items covering %d leaves (max group %d)\n",
			s.Transactions, s.ExactItems, s.Generalized, s.CoveredLeaves, s.MaxGroupLeaves)
		fmt.Printf("LICM encoding: %d variables, %d constraints\n", enc.DB.NumVars(), enc.DB.NumConstraints())
	case "bipartite":
		bg, err := anon.BipartiteAnonymize(d, *k, *l)
		if err != nil {
			fatal(err)
		}
		if err := anon.CheckBipartite(d, bg, *k, *l); err != nil {
			fatal(err)
		}
		enc := encode.Bipartite(d, bg)
		fmt.Printf("scheme=bipartite (k=%d,l=%d): sizes and partition verified, safe=%v\n", *k, *l, bg.Safe)
		fmt.Printf("output: %d transaction groups, %d item groups\n", len(bg.TransGroups), len(bg.ItemGroups))
		fmt.Printf("LICM encoding: %d variables, %d constraints\n", enc.DB.NumVars(), enc.DB.NumConstraints())
	case "suppress":
		s, err := anon.SuppressAnonymize(d, *minSupp)
		if err != nil {
			fatal(err)
		}
		if err := anon.CheckSuppressed(d, s); err != nil {
			fatal(err)
		}
		slots := 0
		for _, t := range s.Trans {
			slots += t.NumSuppressed
		}
		enc := encode.Suppressed(s, d.Items)
		fmt.Printf("scheme=suppress minsupport=%d: consistency verified\n", *minSupp)
		fmt.Printf("output: %d suppressed candidates, %d suppressed slots across %d transactions\n",
			len(s.Candidates), slots, len(s.Trans))
		fmt.Printf("LICM encoding: %d variables, %d constraints\n", enc.DB.NumVars(), enc.DB.NumConstraints())
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "licmanon:", err)
	os.Exit(1)
}
