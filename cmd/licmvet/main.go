// Command licmvet runs the static diagnostics pass (internal/check)
// over LICM constraint stores serialized in the CPLEX LP dialect that
// licmq -lp exports, without solving them — go vet for BIP instances.
//
// Usage:
//
//	licmvet store.lp [more.lp ...]
//	licmq -in data.txt -query q1 -lp - | licmvet -
//
// Exit status mirrors go vet (the shared internal/cliexit
// convention): 0 when every store is clean (or carries
// only warnings), 1 when any store has an ERROR diagnostic — a proof
// that the store is infeasible or malformed — and 2 when an input
// cannot be read or parsed at all. -strict promotes warnings to the
// failing exit; -json emits the diagnostics as one JSON report per
// input for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"licm/internal/check"
	"licm/internal/cliexit"
	"licm/internal/obs"
	"licm/internal/solver"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strict := fs.Bool("strict", false, "exit 1 on warnings too, not just errors")
	asJSON := fs.Bool("json", false, "print reports as JSON")
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: licmvet [-strict] [-json] store.lp ... (or - for stdin)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	logger, err := logOpts.NewLogger(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "licmvet: %v\n", err)
		return cliexit.Usage
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return cliexit.Usage
	}

	exit := cliexit.OK
	for _, path := range paths {
		rep, err := vetOne(path, stdin)
		if err != nil {
			fmt.Fprintf(stderr, "licmvet: %s: %v\n", path, err)
			exit = cliexit.Usage
			continue
		}
		logger.Debug("store checked", "input", path, "diags", len(rep.Diags), "errors", rep.HasErrors())
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Input string             `json:"input"`
				Diags []check.Diagnostic `json:"diags"`
			}{path, rep.Diags}); err != nil {
				fmt.Fprintf(stderr, "licmvet: %v\n", err)
				return cliexit.Usage
			}
		} else {
			for _, d := range rep.Diags {
				fmt.Fprintf(stdout, "%s: %s\n", path, d)
			}
		}
		if exit == cliexit.OK && (rep.HasErrors() || (*strict && len(rep.Diags) > 0)) {
			exit = cliexit.Findings
		}
	}
	return exit
}

func vetOne(path string, stdin io.Reader) (check.Report, error) {
	var r io.Reader
	if path == "-" {
		r = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return check.Report{}, err
		}
		defer f.Close()
		r = f
	}
	p, _, err := solver.ReadLP(r)
	if err != nil {
		return check.Report{}, err
	}
	return p.RunCheck(), nil
}
