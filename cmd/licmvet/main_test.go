package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanLP = `Maximize
 obj: b0 + b1
Subject To
 c0: b0 + b1 >= 1
Binary
 b0 b1
End
`

// infeasibleLP: sum over the same pair bounded >= 2 and <= 1.
const infeasibleLP = `Maximize
 obj: b0
Subject To
 c0: b0 + b1 >= 2
 c1: b0 + b1 <= 1
Binary
 b0 b1
End
`

// warnOnlyLP: a duplicated, trivially true constraint (warnings, no
// errors) plus an unreachable variable b2.
const warnOnlyLP = `Maximize
 obj: b0
Subject To
 c0: b0 + b1 >= 0
 c1: b0 + b1 >= 0
Binary
 b0 b1 b2
End
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestVetClean(t *testing.T) {
	code, out, _ := runVet(t, writeTemp(t, "clean.lp", cleanLP))
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if out != "" {
		t.Fatalf("clean store produced output: %q", out)
	}
}

func TestVetInfeasible(t *testing.T) {
	code, out, _ := runVet(t, writeTemp(t, "bad.lp", infeasibleLP))
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "ERROR") {
		t.Fatalf("no ERROR diagnostic in output:\n%s", out)
	}
}

func TestVetWarningsOnlyAndStrict(t *testing.T) {
	path := writeTemp(t, "warn.lp", warnOnlyLP)
	code, out, _ := runVet(t, path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for warnings without -strict; output:\n%s", code, out)
	}
	if !strings.Contains(out, "WARNING") {
		t.Fatalf("expected WARNING diagnostics in output:\n%s", out)
	}
	code, _, _ = runVet(t, "-strict", path)
	if code != 1 {
		t.Fatalf("-strict exit = %d, want 1", code)
	}
}

func TestVetStdinAndJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-json", "-"}, strings.NewReader(infeasibleLP), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), `"code"`) || !strings.Contains(out.String(), `"diags"`) {
		t.Fatalf("JSON output missing fields:\n%s", out.String())
	}
}

func TestVetBadInput(t *testing.T) {
	code, _, stderr := runVet(t, writeTemp(t, "garbage.lp", "this is not an LP file\n"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "licmvet:") {
		t.Fatalf("no error message on stderr: %q", stderr)
	}
	if code, _, _ := runVet(t, filepath.Join(t.TempDir(), "missing.lp")); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
}

func TestVetMixedInputs(t *testing.T) {
	clean := writeTemp(t, "clean.lp", cleanLP)
	bad := writeTemp(t, "bad.lp", infeasibleLP)
	code, out, _ := runVet(t, clean, bad)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, filepath.Base(bad)) {
		t.Fatalf("diagnostics not attributed to the failing input:\n%s", out)
	}
}
