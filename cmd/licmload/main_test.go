package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"licm/internal/workload"
)

// fastArgs keeps the end-to-end tests around a second: a small store,
// few queries, few MC worlds.
func fastArgs(extra ...string) []string {
	args := []string{"-trans", "100", "-items", "30", "-queries", "4", "-seed", "3", "-mc", "10"}
	return append(args, extra...)
}

// parseRun strictly re-reads the stream licmload wrote — the CLI must
// emit output its own gate accepts.
func parseRun(t *testing.T, data []byte) *workload.Run {
	t.Helper()
	run, err := workload.ReadRun(bytes.NewReader(data), true)
	if err != nil {
		t.Fatalf("licmload output fails its own strict reader: %v", err)
	}
	return run
}

func TestRunEmitsStrictStream(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(fastArgs(), &stdout, &stderr); code != 0 {
		t.Fatalf("licmload: exit %d\nstderr: %s", code, stderr.String())
	}
	res := parseRun(t, stdout.Bytes())
	if len(res.Records) != 4 || res.Summary.Queries != 4 {
		t.Fatalf("got %d records, summary says %d, want 4", len(res.Records), res.Summary.Queries)
	}
	if res.Summary.Violations != 0 {
		t.Fatalf("fixed-seed run has %d violations", res.Summary.Violations)
	}
	if !strings.Contains(stderr.String(), "workload: 4 queries") {
		t.Errorf("human rollup missing from stderr:\n%s", stderr.String())
	}
}

// stripTimings zeroes the wall-clock fields so two runs of the same
// seed compare equal.
func stripTimings(run *workload.Run) {
	for i := range run.Records {
		run.Records[i].LatencyNs = 0
	}
	run.Summary.WallNs = 0
	run.Summary.LatencyP50Ns = 0
	run.Summary.LatencyP95Ns = 0
	run.Summary.LatencyP99Ns = 0
}

// TestReplayMatchesGenerated is the licmgen contract: replaying a
// written spec file answers exactly the queries the in-process
// generator would produce for the same seed.
func TestReplayMatchesGenerated(t *testing.T) {
	specs := workload.GenerateSpecs(4, 303, 1000, 40) // seed 3 -> workload stream 303
	specPath := filepath.Join(t.TempDir(), "queries.jsonl")
	f, err := os.Create(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteSpecs(f, specs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var genOut, repOut, stderr bytes.Buffer
	if code := run(fastArgs(), &genOut, &stderr); code != 0 {
		t.Fatalf("generated run: exit %d\nstderr: %s", code, stderr.String())
	}
	if code := run(fastArgs("-replay", specPath), &repOut, &stderr); code != 0 {
		t.Fatalf("replay run: exit %d\nstderr: %s", code, stderr.String())
	}
	gen, rep := parseRun(t, genOut.Bytes()), parseRun(t, repOut.Bytes())
	stripTimings(gen)
	stripTimings(rep)
	if !reflect.DeepEqual(gen.Records, rep.Records) {
		t.Errorf("replayed records differ from generated records")
	}
	if !reflect.DeepEqual(gen.Summary, rep.Summary) {
		t.Errorf("replayed summary differs: %+v vs %+v", gen.Summary, rep.Summary)
	}
}

func TestSnapshotWritesRun(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd) //nolint:errcheck // best-effort restore

	var stdout, stderr bytes.Buffer
	if code := run(fastArgs("-snapshot", "t", "-label", "t", "-o", filepath.Join(dir, "run.jsonl")), &stdout, &stderr); code != 0 {
		t.Fatalf("licmload -snapshot: exit %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_t.json"))
	if err != nil {
		t.Fatal(err)
	}
	snap := parseRun(t, data)
	if snap.Summary.Label != "t" || len(snap.Records) != 4 {
		t.Errorf("snapshot label %q, %d records", snap.Summary.Label, len(snap.Records))
	}
	stream, err := os.ReadFile(filepath.Join(dir, "run.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream, data) {
		t.Errorf("-o stream and snapshot diverge")
	}
}

func TestBadInputsExit2(t *testing.T) {
	cases := [][]string{
		{"-queries", "0"},
		{"-queries", "-3"},
		{"-replay", "no_such_file.jsonl"},
		{"-scheme", "rot13", "-queries", "1"},
		{"-log-level", "loudest"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("licmload %v: exit %d, want 2", args, code)
		}
	}
}

func TestEmptyReplayExit2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-replay", path}, &stdout, &stderr); code != 2 {
		t.Errorf("empty replay file: exit %d, want 2", code)
	}
}
