// Command licmload is the workload observatory driver: it answers a
// seeded stream of randomized aggregate queries (internal/workload)
// through the anytime supervisor and scores every answer with wall
// latency, ladder quality and bound tightness against ground truth,
// streaming licm-load/1 JSONL records as queries complete.
//
// Usage:
//
//	licmload -queries 200 -seed 7                 # generate and run 200 queries
//	licmload -replay queries.jsonl                # replay a licmgen -queries artifact
//	licmload -queries 40 -snapshot workload       # also write BENCH_workload.json
//	licmload -queries 50 -deadline 2s -o run.jsonl
//	licmload -replay queries.jsonl -target 127.0.0.1:8080
//	licmload -replay queries.jsonl -target 127.0.0.1:8080 -serve-snapshot serve
//
// With -target, every record carries the server-assigned request_id,
// correlating it with the server's trace spans and its flight-recorder
// entry at /debug/licm/requests. -serve-snapshot additionally hammers
// the target with sustained concurrent load after the scored pass and
// writes the achieved throughput, shed rate, ladder mix and latency
// quantiles as a licm-bench/1 snapshot for licmtrace bench-diff.
//
// With -target the measured answers come from a running licmd (see
// cmd/licmd) instead of local solves, while ground truth and scoring
// stay local — the store flags (-trans, -items, -scheme, -k, -seed,
// ...) must therefore match the server's so both sides describe the
// same store. This turns the scored workload stream plus the licmtrace
// load -diff gate into an end-to-end check of the serving path.
//
// Inspect or gate on the output with licmtrace load. Exit status 1
// when any query has a consistency violation (ground truth outside
// proven bounds), 2 on usage errors, 0 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"licm/internal/bench"
	"licm/internal/cliexit"
	"licm/internal/explain"
	"licm/internal/obs"
	"licm/internal/seedflag"
	"licm/internal/serve"
	"licm/internal/solver"
	"licm/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		trans   = fs.Int("trans", 300, "number of transactions")
		items   = fs.Int("items", 60, "number of item types")
		fanout  = fs.Int("fanout", 8, "generalization hierarchy fanout")
		scheme  = fs.String("scheme", "k", "anonymization scheme: km | k | bipartite | suppress")
		k       = fs.Int("k", 4, "anonymity parameter (support threshold for suppress)")
		m       = fs.Int("m", 2, "subset size for km-anonymity")
		queries = fs.Int("queries", 100, "number of randomized queries to generate (ignored with -replay)")
		replay  = fs.String("replay", "", "replay a licm-queries/1 spec file (licmgen -queries) instead of generating")
		dead    = fs.Duration("deadline", 0, "wall-clock cap per query solve; late queries degrade down the ladder (0 = none)")
		mcN     = fs.Int("mc", 30, "Monte-Carlo samples for ground truth, cross-checks and the sampled fallback")
		nodes   = fs.Int64("maxnodes", 300_000, "solver node budget per solve")
		refMax  = fs.Int("exact-ref-maxvars", workload.DefaultExactRefMaxVars, "largest post-query store (vars) still given an exact ground-truth reference solve; negative always uses MC")
		target  = fs.String("target", "", "query a running licmd at this address instead of solving locally (store flags must match the server's)")
		out     = fs.String("o", "-", "write the licm-load/1 stream here (- = stdout)")
		snap    = fs.String("snapshot", "", "also write the stream as BENCH_<label>.json for licmtrace load -diff")
		label   = fs.String("label", "", "run label recorded in the summary")

		serveSnap = fs.String("serve-snapshot", "", "after the scored run, measure sustained concurrent throughput against -target and write the serving profile as BENCH_<label>.json (licm-bench/1, for licmtrace bench-diff)")
		serveConc = fs.Int("serve-concurrency", 8, "parallel in-flight queries of the -serve-snapshot measurement")
		serveRep  = fs.Int("serve-repeat", 3, "passes over the spec list during the -serve-snapshot measurement")

		tracePath = fs.String("trace", "", "write a JSON-lines trace to this file")
		verbose   = fs.Bool("verbose", false, "print a human-readable trace to stderr")
		debugAddr = fs.String("debug-addr", "", "serve pprof, /metrics and the /debug/licm dashboard on this address while the run is live")
	)
	seed := seedflag.Register(fs)
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "licmload:", err)
		return cliexit.Usage
	}

	logger, err := logOpts.NewLogger(stderr)
	if err != nil {
		return fail(err)
	}
	tr, closeTrace, err := obs.Setup(*tracePath, *verbose, stderr)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			fmt.Fprintln(stderr, "licmload:", err)
		}
	}()
	metrics := obs.NewRegistry()
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "debug server on http://%s/ — /debug/pprof/, /metrics, /debug/licm\n", srv.Addr())
	}

	var specs []workload.Spec
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return fail(err)
		}
		specs, err = workload.ReadSpecs(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		if len(specs) == 0 {
			return fail(fmt.Errorf("%s holds no query specs", *replay))
		}
	} else {
		if *queries <= 0 {
			return fail(fmt.Errorf("-queries must be positive"))
		}
		specs = workload.GenerateSpecs(*queries,
			seedflag.Derive(*seed, seedflag.WorkloadStream), 1000, 40)
	}

	opts := solver.DefaultOptions()
	opts.MaxNodes = *nodes
	opts.CompleteWitness = false
	census := explain.NewCensus()
	census.SetMetrics(metrics)
	cfg := workload.Config{
		NumTransactions: *trans,
		NumItems:        *items,
		HierarchyFanout: *fanout,
		Scheme:          *scheme,
		K:               *k,
		M:               *m,
		Seed:            *seed,
		Deadline:        *dead,
		MCSamples:       *mcN,
		ExactRefMaxVars: *refMax,
		Solver:          opts,
		Trace:           tr,
		Metrics:         metrics,
		Log:             logger,
		Label:           *label,
		Census:          census,
	}
	var client *serve.Client
	if *target != "" {
		client = &serve.Client{BaseURL: *target}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := client.Readyz(ctx)
		cancel()
		if err != nil {
			return fail(fmt.Errorf("target %s is not ready: %w", *target, err))
		}
		cfg.Answer = client.Answer
	}
	if *serveSnap != "" && client == nil {
		return fail(fmt.Errorf("-serve-snapshot needs -target (it measures a live server)"))
	}

	var w io.Writer = stdout
	if *out != "-" && *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	cfg.OnRecord = func(r *workload.Record) {
		if err := workload.WriteRecord(w, r); err != nil {
			fmt.Fprintln(stderr, "licmload:", err)
		}
	}

	res, err := workload.Execute(cfg, specs)
	if err != nil {
		fmt.Fprintln(stderr, "licmload:", err)
		return cliexit.Usage
	}
	if err := workload.WriteSummary(w, res.Summary); err != nil {
		return fail(err)
	}
	if *snap != "" {
		path := "BENCH_" + *snap + ".json"
		f, err := os.Create(path)
		if err != nil {
			return fail(err)
		}
		if err := workload.WriteRun(f, res); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "wrote workload snapshot (%d queries) to %s\n", len(res.Records), path)
	}

	if *serveSnap != "" {
		gen := workload.LoadGen{Answer: client.Answer, Concurrency: *serveConc, Repeat: *serveRep}
		profile, err := gen.Run(specs)
		if err != nil {
			fmt.Fprintln(stderr, "licmload:", err)
			return cliexit.Usage
		}
		snapPath := "BENCH_" + *serveSnap + ".json"
		f, err := os.Create(snapPath)
		if err != nil {
			return fail(err)
		}
		bs := profile.Snapshot(*serveSnap, cfg)
		if err := bench.WriteSnapshotJSON(f, bs); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "serving snapshot: %d offered (%d answered, %d shed, %d errors) at %.1f qps, p99 %v -> %s\n",
			profile.Offered, profile.Answered, profile.Shed, profile.Errors, profile.QPS,
			time.Duration(profile.LatencyP99Ns).Round(time.Microsecond), snapPath)
	}

	printSummary(stderr, res.Summary)
	if res.Summary.Violations > 0 {
		fmt.Fprintf(stderr, "licmload: %d consistency violations — proven bounds failed a ground-truth check\n",
			res.Summary.Violations)
		return cliexit.Findings
	}
	return cliexit.OK
}

// printSummary renders the human rollup on stderr, leaving stdout to
// the machine-readable stream.
func printSummary(w io.Writer, s *workload.Summary) {
	fmt.Fprintf(w, "workload: %d queries over %s(k=%d), seed %d, wall %v\n",
		s.Queries, s.Scheme, s.K, s.Seed, time.Duration(s.WallNs).Round(time.Millisecond))
	fmt.Fprintf(w, "  quality: exact %d, proven-interval %d, sampled %d, failed %d\n",
		s.ByQuality["exact"], s.ByQuality["proven-interval"], s.ByQuality["sampled"], s.ByQuality["failed"])
	fmt.Fprintf(w, "  latency: p50 %v, p95 %v, p99 %v\n",
		time.Duration(s.LatencyP50Ns).Round(time.Microsecond),
		time.Duration(s.LatencyP95Ns).Round(time.Microsecond),
		time.Duration(s.LatencyP99Ns).Round(time.Microsecond))
	fmt.Fprintf(w, "  tightness: qerr p50 %.4g, p90 %.4g, max %.4g (%d exact references)\n",
		s.QerrP50, s.QerrP90, s.QerrMax, s.ExactRef)
	fmt.Fprintf(w, "  components: %d (%d distinct fingerprints, cache hit rate %.1f%%)\n",
		s.Components, s.DistinctFingerprints, 100*s.CacheHitRate)
	fmt.Fprintf(w, "  violations: %d\n", s.Violations)
}
