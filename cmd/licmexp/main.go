// Command licmexp regenerates the paper's evaluation figures on the
// synthetic BMS-POS-shaped dataset: Figure 5 (LICM vs Monte-Carlo
// bounds across anonymity parameters), Figure 6 (timing split), and
// Figure 7 (pruning effectiveness), plus the solver and MC-sample
// ablations from DESIGN.md.
//
// Usage:
//
//	licmexp -fig all -trans 2000
//	licmexp -fig 5 -trans 5000 -ks 2,4,6,8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"licm/internal/bench"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "which figure to run: 5 | 6 | 7 | ablation | all")
		trans = flag.Int("trans", 2000, "number of transactions")
		items = flag.Int("items", 400, "number of item types")
		ks    = flag.String("ks", "2,4,6,8", "anonymity parameters (comma separated)")
		mcN   = flag.Int("mc", 20, "Monte-Carlo sample count")
		seed  = flag.Int64("seed", 1, "dataset seed")
		nodes = flag.Int64("maxnodes", 300_000, "solver node budget per solve")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.NumTransactions = *trans
	cfg.NumItems = *items
	cfg.MCSamples = *mcN
	cfg.Seed = *seed
	cfg.Solver.MaxNodes = *nodes
	cfg.Q3Frac = 0 // recompute for the chosen scale
	var parsed []int
	for _, part := range strings.Split(*ks, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad -ks entry %q", part))
		}
		parsed = append(parsed, v)
	}
	cfg.Ks = parsed

	run := func(name string, f func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	switch *fig {
	case "5":
		run("Figure 5", func() error { _, err := cfg.Fig5(os.Stdout); return err })
	case "6":
		run("Figure 6", func() error { _, err := cfg.Fig6(os.Stdout); return err })
	case "7":
		run("Figure 7", func() error { _, err := cfg.Fig7(os.Stdout); return err })
	case "ablation":
		run("Solver ablation", func() error { _, err := cfg.AblationSolver(os.Stdout); return err })
		run("MC sample sweep", func() error {
			_, err := cfg.AblationMCSamples(os.Stdout, []int{5, 20, 100, 500})
			return err
		})
	case "all":
		run("Figure 5", func() error { _, err := cfg.Fig5(os.Stdout); return err })
		run("Figure 6", func() error { _, err := cfg.Fig6(os.Stdout); return err })
		run("Figure 7", func() error { _, err := cfg.Fig7(os.Stdout); return err })
		run("Solver ablation", func() error { _, err := cfg.AblationSolver(os.Stdout); return err })
		run("MC sample sweep", func() error {
			_, err := cfg.AblationMCSamples(os.Stdout, []int{5, 20, 100, 500})
			return err
		})
	default:
		fatal(fmt.Errorf("unknown -fig %q", *fig))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "licmexp:", err)
	os.Exit(1)
}
