// Command licmexp regenerates the paper's evaluation figures on the
// synthetic BMS-POS-shaped dataset: Figure 5 (LICM vs Monte-Carlo
// bounds across anonymity parameters), Figure 6 (timing split), and
// Figure 7 (pruning effectiveness), plus the solver and MC-sample
// ablations from DESIGN.md.
//
// Usage:
//
//	licmexp -fig all -trans 2000
//	licmexp -fig 5 -trans 5000 -ks 2,4,6,8
//	licmexp -fig 5 -deadline 10s       # cap each cell's solve; late cells degrade, the sweep survives
//
// Observability:
//
//	licmexp -fig 5 -trace run.jsonl    # JSON-lines trace of every cell
//	licmexp -fig 6 -json cells.json    # machine-readable cells with solve summaries
//	licmexp -fig all -debug-addr :6060 # pprof + /metrics + live dashboard while the sweep runs
//	licmexp -fig 5 -snapshot dev       # BENCH_dev.json for licmtrace bench-diff
//	licmexp -fig 5 -explain-json explain.jsonl  # per-cell licm-explain/1 records for licmtrace census
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"licm/internal/bench"
	"licm/internal/cert"
	"licm/internal/explain"
	"licm/internal/obs"
	"licm/internal/seedflag"
)

func main() {
	var (
		fig          = flag.String("fig", "all", "which figure to run: 5 | 6 | 7 | ablation | all")
		trans        = flag.Int("trans", 2000, "number of transactions")
		items        = flag.Int("items", 400, "number of item types")
		ks           = flag.String("ks", "2,4,6,8", "anonymity parameters (comma separated)")
		mcN          = flag.Int("mc", 20, "Monte-Carlo sample count")
		nodes        = flag.Int64("maxnodes", 300_000, "solver node budget per solve")
		cellDeadline = flag.Duration("deadline", 0, "wall-clock cap per cell solve; a cell that runs out degrades to quality=interval or quality=failed instead of aborting the sweep (0 = no cap)")
		vet          = flag.Bool("check", false, "run the static diagnostics pass on every BIP before solving; an encoder bug that emits a provably infeasible store fails fast with diagnostics instead of burning the node budget")

		tracePath = flag.String("trace", "", "write a JSON-lines trace of every experiment cell to this file")
		verbose   = flag.Bool("verbose", false, "print a human-readable trace to stderr")
		debugAddr = flag.String("debug-addr", "", "serve pprof, expvar, Prometheus /metrics and the /debug/licm dashboard on this address, e.g. :6060")
		jsonPath  = flag.String("json", "", "write the measured cells (figures 5/6/7) as JSON to this file")
		snapLabel = flag.String("snapshot", "", "write a BENCH_<label>.json benchmark snapshot (cells + run metadata) for licmtrace bench-diff")
		expPath   = flag.String("explain-json", "", "write every cell's licm-explain/1 record (JSONL) to this file and print a component census summary; feeds licmtrace census")
		certPath  = flag.String("certify", "", "write every cell's licm-cert/1 optimality certificates (JSONL) to this file; check them with licmverify")
	)
	seed := seedflag.Register(flag.CommandLine)
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logOpts.NewLogger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	tr, closeTrace, err := obs.Setup(*tracePath, *verbose, os.Stderr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			fatal(err)
		}
	}()
	metrics := obs.NewRegistry()
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/ — /debug/pprof/, /debug/vars, /metrics, /debug/licm\n", srv.Addr())
	}

	cfg := bench.DefaultConfig()
	cfg.NumTransactions = *trans
	cfg.NumItems = *items
	cfg.MCSamples = *mcN
	cfg.Seed = *seed
	cfg.Solver.MaxNodes = *nodes
	cfg.Solver.Check = *vet
	cfg.SolveDeadline = *cellDeadline
	cfg.Q3Frac = 0 // recompute for the chosen scale
	var parsed []int
	for _, part := range strings.Split(*ks, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad -ks entry %q", part))
		}
		parsed = append(parsed, v)
	}
	cfg.Ks = parsed
	cfg.Trace = tr
	cfg.Metrics = metrics
	cfg.Log = logger
	cfg.Explain = *expPath != ""
	cfg.Certify = *certPath != ""

	runStart := time.Now()
	var allCells []bench.Cell
	run := func(name string, f func() ([]bench.Cell, error)) {
		fmt.Printf("== %s ==\n", name)
		cells, err := f()
		if err != nil {
			fatal(err)
		}
		allCells = append(allCells, cells...)
		fmt.Println()
	}
	noCells := func(f func() error) func() ([]bench.Cell, error) {
		return func() ([]bench.Cell, error) { return nil, f() }
	}
	switch *fig {
	case "5":
		run("Figure 5", func() ([]bench.Cell, error) { return cfg.Fig5(os.Stdout) })
	case "6":
		run("Figure 6", func() ([]bench.Cell, error) { return cfg.Fig6(os.Stdout) })
	case "7":
		run("Figure 7", func() ([]bench.Cell, error) { return cfg.Fig7(os.Stdout) })
	case "ablation":
		run("Solver ablation", noCells(func() error { _, err := cfg.AblationSolver(os.Stdout); return err }))
		run("MC sample sweep", noCells(func() error {
			_, err := cfg.AblationMCSamples(os.Stdout, []int{5, 20, 100, 500})
			return err
		}))
	case "all":
		run("Figure 5", func() ([]bench.Cell, error) { return cfg.Fig5(os.Stdout) })
		run("Figure 6", func() ([]bench.Cell, error) { return cfg.Fig6(os.Stdout) })
		run("Figure 7", func() ([]bench.Cell, error) { return cfg.Fig7(os.Stdout) })
		run("Solver ablation", noCells(func() error { _, err := cfg.AblationSolver(os.Stdout); return err }))
		run("MC sample sweep", noCells(func() error {
			_, err := cfg.AblationMCSamples(os.Stdout, []int{5, 20, 100, 500})
			return err
		}))
	default:
		fatal(fmt.Errorf("unknown -fig %q", *fig))
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteCellsJSON(f, allCells); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d cells to %s\n", len(allCells), *jsonPath)
	}

	if *expPath != "" {
		f, err := os.Create(*expPath)
		if err != nil {
			fatal(err)
		}
		census := explain.NewCensus()
		census.SetMetrics(metrics)
		n := 0
		for _, cell := range allCells {
			if cell.Explain == nil {
				continue
			}
			if err := explain.WriteJSONL(f, cell.Explain); err != nil {
				f.Close()
				fatal(err)
			}
			census.Observe(cell.Explain)
			n++
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		s := census.Summarize(0)
		fmt.Printf("wrote %d explain records to %s\n", n, *expPath)
		fmt.Printf("component census: %d components over %d queries, %d distinct fingerprints, simulated cache hit rate %.1f%%\n",
			s.Components, s.Queries, s.Distinct, 100*s.HitRate)
	}

	if *certPath != "" {
		f, err := os.Create(*certPath)
		if err != nil {
			fatal(err)
		}
		n := 0
		for _, cell := range allCells {
			for _, c := range cell.Certs {
				if err := cert.WriteJSONL(f, c); err != nil {
					f.Close()
					fatal(err)
				}
				n++
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d certificates to %s — verify with: licmverify %s\n", n, *certPath, *certPath)
	}

	if *snapLabel != "" {
		snap := bench.NewSnapshot(*snapLabel, cfg, allCells, time.Since(runStart))
		path := "BENCH_" + *snapLabel + ".json"
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteSnapshotJSON(f, snap); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote benchmark snapshot (%d cells) to %s\n", len(snap.Cells), path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "licmexp:", err)
	os.Exit(1)
}
