package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"licm/internal/cert"
	"licm/internal/dataset"
	"licm/internal/explain"
)

var update = flag.Bool("update", false, "rewrite golden files")

// genInput writes a small deterministic dataset in licmgen format.
func genInput(t *testing.T) string {
	t.Helper()
	d, err := dataset.Generate(dataset.Config{
		NumTransactions: 60, NumItems: 32, AvgSize: 3, MaxSize: 8,
		ZipfS: 1.3, LocationRange: 10, PriceRange: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runQ(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// stripTimings drops the wall-clock-dependent lines so the rest of the
// output can be golden-compared.
func stripTimings(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		switch {
		case strings.HasPrefix(line, "timing:"),
			strings.HasPrefix(line, "solve phases:"),
			strings.HasPrefix(line, "supervisor:"),
			strings.HasPrefix(line, "memory:"),
			strings.HasPrefix(line, "LP relaxation latency:"),
			strings.HasPrefix(line, "per-node latency:"),
			strings.HasPrefix(line, "Monte-Carlo"):
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestSupervisedExactGolden: a generous deadline yields an exact,
// quality-tagged answer and exit 0 even under -strict.
func TestSupervisedExactGolden(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1",
		"-deadline", "2m", "-strict")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s\nstdout:\n%s", code, errBuf, out)
	}
	checkGolden(t, "q1_exact.golden", stripTimings(out))
}

// TestStrictDegradedExitCode: an already-spent deadline forces the
// sampled rung of the ladder; -strict must surface that as exit 3
// while the output still names the degradation honestly.
func TestStrictDegradedExitCode(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1",
		"-deadline", "1ns", "-strict")
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr:\n%s\nstdout:\n%s", code, errBuf, out)
	}
	if !strings.Contains(out, "quality=sampled") {
		t.Fatalf("degraded output does not carry the sampled tag:\n%s", out)
	}
	checkGolden(t, "q1_degraded.golden", stripTimings(out))
}

// TestStrictProvenIntervalExitCode: a node-capped bipartite solve hits
// the proven-interval rung — still exit 3 under -strict, with the
// outer interval printed.
func TestStrictProvenIntervalExitCode(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "bipartite", "-k", "3", "-query", "q1",
		"-deadline", "2m", "-maxnodes", "20000", "-strict")
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr:\n%s\nstdout:\n%s", code, errBuf, out)
	}
	if !strings.Contains(out, "quality=proven-interval") {
		t.Fatalf("expected a proven-interval result:\n%s", out)
	}
	checkGolden(t, "q1_interval.golden", stripTimings(out))
}

// TestStrictWithoutDeadline: -strict alone engages the supervisor; an
// exact result exits 0.
func TestStrictWithoutDeadline(t *testing.T) {
	in := genInput(t)
	code, out, _ := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1", "-strict")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "quality=exact") {
		t.Fatalf("expected an exact supervised result:\n%s", out)
	}
}

// TestUnsupervisedStillWorks guards the legacy path.
func TestUnsupervisedStillWorks(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errBuf)
	}
	if !strings.Contains(out, "exact bounds [") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestBadFlagsExitTwo: unusable input is exit 2, distinct from solver
// errors (1) and strict degradation (3).
func TestBadFlagsExitTwo(t *testing.T) {
	if code, _, _ := runQ(t); code != 2 {
		t.Fatalf("missing -in: exit = %d, want 2", code)
	}
	if code, _, _ := runQ(t, "-in", filepath.Join(t.TempDir(), "nope.txt")); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
}

// TestExplainHuman: -explain prints the pruning funnel and a
// per-component table whose fingerprints look canonical.
func TestExplainHuman(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1", "-explain")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errBuf)
	}
	if !strings.Contains(out, "explain: quality=exact") {
		t.Fatalf("missing explain header:\n%s", out)
	}
	for _, want := range []string{"pruned", "presolve fixed", "fingerprint", "share", "  max:", "  min:"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

// TestExplainJSON: -explain-json emits one valid licm-explain/1 line
// whose run totals match the per-component sums, and works both to a
// file and to stdout ("-").
func TestExplainJSON(t *testing.T) {
	in := genInput(t)
	path := filepath.Join(t.TempDir(), "explain.jsonl")
	code, _, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1",
		"-explain-json", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errBuf)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reps, err := explain.ReadJSONL(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1", len(reps))
	}
	rep := reps[0]
	if rep.Query != "Q1" || rep.Scheme != "k" || rep.K != 2 {
		t.Errorf("report labels = %q/%q/%d", rep.Query, rep.Scheme, rep.K)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		var nodes int64
		for _, c := range run.Components {
			nodes += c.Nodes
		}
		if nodes != run.Nodes {
			t.Errorf("%s: component nodes sum %d != run total %d", run.Sense, nodes, run.Nodes)
		}
	}

	// "-" routes the record to stdout after the human report.
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1",
		"-explain-json", "-")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errBuf)
	}
	if !strings.Contains(out, `"schema":"licm-explain/1"`) {
		t.Fatalf("stdout does not carry the JSON record:\n%s", out)
	}
}

// TestExplainSupervised: the explain report rides along a supervised
// solve and carries the ladder's quality tag even on exit 3.
func TestExplainSupervised(t *testing.T) {
	in := genInput(t)
	path := filepath.Join(t.TempDir(), "explain.jsonl")
	code, _, errBuf := runQ(t, "-in", in, "-scheme", "bipartite", "-k", "3", "-query", "q1",
		"-deadline", "2m", "-maxnodes", "20000", "-strict", "-explain-json", path)
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr:\n%s", code, errBuf)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reps, err := explain.ReadJSONL(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1", len(reps))
	}
	if q := reps[0].Quality; q != "proven-interval" {
		t.Errorf("report quality = %q, want proven-interval", q)
	}
}

// TestCertifyFlag: -certify writes licm-cert/1 certificates that the
// independent verifier accepts, with the query labels attached.
func TestCertifyFlag(t *testing.T) {
	in := genInput(t)
	path := filepath.Join(t.TempDir(), "certs.jsonl")
	code, _, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1",
		"-certify", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errBuf)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	certs, err := cert.ReadJSONL(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != 2 {
		t.Fatalf("got %d certificates, want 2 (max and min)", len(certs))
	}
	for i, c := range certs {
		if c.Query != "Q1" || c.Scheme != "k" || c.K != 2 {
			t.Errorf("certificate %d labels = %q/%q/%d", i, c.Query, c.Scheme, c.K)
		}
		v, err := cert.Verify(c)
		if err != nil {
			t.Fatalf("certificate %d rejected: %v", i, err)
		}
		if len(v.Skipped) != 0 {
			t.Errorf("certificate %d skipped components: %v", i, v.Skipped)
		}
	}

	// "-" routes the certificates to stdout.
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1",
		"-certify", "-")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errBuf)
	}
	if !strings.Contains(out, `"schema":"licm-cert/1"`) {
		t.Fatalf("stdout does not carry the certificates:\n%s", out)
	}
}
