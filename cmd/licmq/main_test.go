package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"licm/internal/dataset"
)

var update = flag.Bool("update", false, "rewrite golden files")

// genInput writes a small deterministic dataset in licmgen format.
func genInput(t *testing.T) string {
	t.Helper()
	d, err := dataset.Generate(dataset.Config{
		NumTransactions: 60, NumItems: 32, AvgSize: 3, MaxSize: 8,
		ZipfS: 1.3, LocationRange: 10, PriceRange: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runQ(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// stripTimings drops the wall-clock-dependent lines so the rest of the
// output can be golden-compared.
func stripTimings(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		switch {
		case strings.HasPrefix(line, "timing:"),
			strings.HasPrefix(line, "solve phases:"),
			strings.HasPrefix(line, "supervisor:"),
			strings.HasPrefix(line, "memory:"),
			strings.HasPrefix(line, "LP relaxation latency:"),
			strings.HasPrefix(line, "per-node latency:"),
			strings.HasPrefix(line, "Monte-Carlo"):
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestSupervisedExactGolden: a generous deadline yields an exact,
// quality-tagged answer and exit 0 even under -strict.
func TestSupervisedExactGolden(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1",
		"-deadline", "2m", "-strict")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s\nstdout:\n%s", code, errBuf, out)
	}
	checkGolden(t, "q1_exact.golden", stripTimings(out))
}

// TestStrictDegradedExitCode: an already-spent deadline forces the
// sampled rung of the ladder; -strict must surface that as exit 3
// while the output still names the degradation honestly.
func TestStrictDegradedExitCode(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1",
		"-deadline", "1ns", "-strict")
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr:\n%s\nstdout:\n%s", code, errBuf, out)
	}
	if !strings.Contains(out, "quality=sampled") {
		t.Fatalf("degraded output does not carry the sampled tag:\n%s", out)
	}
	checkGolden(t, "q1_degraded.golden", stripTimings(out))
}

// TestStrictProvenIntervalExitCode: a node-capped bipartite solve hits
// the proven-interval rung — still exit 3 under -strict, with the
// outer interval printed.
func TestStrictProvenIntervalExitCode(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "bipartite", "-k", "3", "-query", "q1",
		"-deadline", "2m", "-maxnodes", "20000", "-strict")
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr:\n%s\nstdout:\n%s", code, errBuf, out)
	}
	if !strings.Contains(out, "quality=proven-interval") {
		t.Fatalf("expected a proven-interval result:\n%s", out)
	}
	checkGolden(t, "q1_interval.golden", stripTimings(out))
}

// TestStrictWithoutDeadline: -strict alone engages the supervisor; an
// exact result exits 0.
func TestStrictWithoutDeadline(t *testing.T) {
	in := genInput(t)
	code, out, _ := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1", "-strict")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "quality=exact") {
		t.Fatalf("expected an exact supervised result:\n%s", out)
	}
}

// TestUnsupervisedStillWorks guards the legacy path.
func TestUnsupervisedStillWorks(t *testing.T) {
	in := genInput(t)
	code, out, errBuf := runQ(t, "-in", in, "-scheme", "k", "-k", "2", "-query", "q1")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errBuf)
	}
	if !strings.Contains(out, "exact bounds [") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestBadFlagsExitTwo: unusable input is exit 2, distinct from solver
// errors (1) and strict degradation (3).
func TestBadFlagsExitTwo(t *testing.T) {
	if code, _, _ := runQ(t); code != 2 {
		t.Fatalf("missing -in: exit = %d, want 2", code)
	}
	if code, _, _ := runQ(t, "-in", filepath.Join(t.TempDir(), "nope.txt")); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
}
