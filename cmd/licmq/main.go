// Command licmq answers one of the paper's aggregate queries over an
// anonymized dataset: it anonymizes the input in memory, encodes it
// into LICM, translates the query, and reports the exact (or proven
// outer) lower and upper bounds from the BIP solver — optionally
// alongside the naive Monte-Carlo range for comparison.
//
// Usage:
//
//	licmq -in data.txt -scheme k -k 4 -query q1
//	licmq -in data.txt -scheme bipartite -k 4 -query q3 -mc 20
//
// Observability:
//
//	licmq -in data.txt -query q1 -trace trace.jsonl   # JSON-lines trace
//	licmq -in data.txt -query q1 -verbose             # human-readable trace on stderr
//	licmq -in data.txt -query q3 -debug-addr :6060    # pprof + expvar server
//	licmq -in data.txt -query q3 -timelimit 30s       # best-effort bounds on timeout
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"licm/internal/anon"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/encode"
	"licm/internal/hierarchy"
	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/queries"
	"licm/internal/solver"
)

func main() {
	var (
		in       = flag.String("in", "", "input dataset (licmgen format; required)")
		scheme   = flag.String("scheme", "k", "anonymization scheme: km | k | bipartite | suppress")
		k        = flag.Int("k", 4, "anonymity parameter")
		m        = flag.Int("m", 2, "subset size m (km scheme)")
		minSupp  = flag.Int("minsupport", 10, "support threshold (suppress scheme)")
		fanout   = flag.Int("fanout", 8, "hierarchy fanout")
		query    = flag.String("query", "q1", "query: q1 | q2 | q3")
		q3x      = flag.Int("q3x", 2, "popularity threshold X for q3")
		q3frac   = flag.Float64("q3frac", 0.01, "selectivity of q3 location predicates")
		mcRuns   = flag.Int("mc", 0, "also run naive Monte-Carlo with this many worlds")
		maxNodes = flag.Int64("maxnodes", 2_000_000, "solver node budget (0 = unlimited)")
		lpOut    = flag.String("lp", "", "also export the maximization BIP in CPLEX LP format to this file")
		workers  = flag.Int("workers", 1, "solve independent components with this many workers")
		vet      = flag.Bool("check", false, "run the static diagnostics pass (internal/check) before solving; a provably infeasible store fails fast with its diagnostics")

		tracePath = flag.String("trace", "", "write a JSON-lines trace of operators, solver phases and MC sampling to this file")
		verbose   = flag.Bool("verbose", false, "print a human-readable trace to stderr")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar (live solver counters) on this address, e.g. :6060")
		timeLimit = flag.Duration("timelimit", 0, "cancel the solve after this long and report best-effort bounds (0 = no limit)")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}

	tr, closeTrace, err := obs.Setup(*tracePath, *verbose, os.Stderr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			fatal(err)
		}
	}()
	metrics := obs.NewRegistry()
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		obs.PublishExpvar("licm", metrics)
		fmt.Fprintf(os.Stderr, "debug server (pprof, expvar) on http://%s/debug/pprof/\n", addr)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	d, err := dataset.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	enc, err := buildEncoding(d, *scheme, *k, *m, *minSupp, *fanout)
	if err != nil {
		fatal(err)
	}
	tModel := time.Since(start)
	// One tracer covers the whole pipeline: query operators pick it up
	// from the DB, the solver inherits it via core.Bounds.
	enc.DB.SetTracer(tr)

	var q queries.Query
	switch *query {
	case "q1":
		q = queries.PaperQ1(1000, 40)
	case "q2":
		q = queries.PaperQ2(1000, 40)
	case "q3":
		q = queries.PaperQ3(1000, *q3frac, *q3x)
	default:
		fatal(fmt.Errorf("unknown query %q", *query))
	}

	start = time.Now()
	rel, err := q.BuildLICM(enc)
	if err != nil {
		fatal(err)
	}
	tQuery := time.Since(start)

	if *lpOut != "" {
		f, err := os.Create(*lpOut)
		if err != nil {
			fatal(err)
		}
		p := &solver.Problem{
			NumVars:     enc.DB.NumVars(),
			Constraints: enc.DB.Constraints(),
			Objective:   core.CountStar(rel),
		}
		if err := solver.WriteLP(f, p, solver.SenseMax); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote BIP instance to %s (%d vars, %d constraints)\n", *lpOut, p.NumVars, len(p.Constraints))
	}

	opts := solver.DefaultOptions()
	opts.MaxNodes = *maxNodes
	opts.Workers = *workers
	opts.Metrics = metrics
	opts.Check = *vet
	if *verbose {
		opts.Progress = func(pi solver.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "progress: %d nodes, %d LP solves, %d propagations, %d incumbents\n",
				pi.Nodes, pi.LPSolves, pi.Propagations, pi.Incumbents)
		}
	}
	if *timeLimit > 0 {
		deadline := time.Now().Add(*timeLimit)
		opts.Cancel = func() bool { return time.Now().After(deadline) }
	}
	start = time.Now()
	res, err := core.CountBounds(enc.DB, rel, opts)
	if err != nil {
		var ce *solver.CheckError
		if errors.As(err, &ce) {
			fmt.Fprintln(os.Stderr, "licmq: the encoded store failed static checks:")
			for _, d := range ce.Report.Diags {
				fmt.Fprintln(os.Stderr, "  "+d.String())
			}
			os.Exit(1)
		}
		fatal(err)
	}
	tSolve := time.Since(start)

	fmt.Printf("%s over %s(k=%d): ", q.Name(), *scheme, *k)
	if res.MinProven && res.MaxProven {
		fmt.Printf("exact bounds [%d, %d]\n", res.Min, res.Max)
	} else {
		fmt.Printf("best found [%d, %d], proven outer bounds [%d, %d]\n",
			res.Min, res.Max, res.MinBound, res.MaxBound)
	}
	if res.Stats.Canceled {
		fmt.Printf("solve canceled after %v (time limit %v); bounds are best-effort\n",
			res.Stats.TotalTime.Round(time.Millisecond), *timeLimit)
	}
	fmt.Printf("timing: L-model %v, L-query %v, L-solve %v\n", tModel, tQuery, tSolve)
	fmt.Printf("solve phases: prune %v, presolve %v, search %v, witness %v\n",
		res.Stats.PruneTime, res.Stats.PresolveTime, res.Stats.SearchTime, res.Stats.WitnessTime)
	fmt.Printf("problem: %d vars, %d constraints; after pruning %d vars, %d constraints; %d components, %d nodes, %d LP solves, %d propagations\n",
		res.Stats.VarsBefore, res.Stats.ConsBefore,
		res.Stats.VarsAfterPrune, res.Stats.ConsAfterPrune,
		res.Stats.Components, res.Stats.Nodes, res.Stats.LPSolves, res.Stats.Propagations)
	for _, h := range []struct{ name, label string }{
		{"solver.lp_ns", "LP relaxation latency"},
		{"solver.node_ns", "per-node latency"},
	} {
		if snap := metrics.Histogram(h.name).Snapshot(); snap.Count > 0 {
			fmt.Printf("%s: n=%d mean=%v p50<%v p99<%v\n", h.label, snap.Count,
				time.Duration(int64(snap.Mean)).Round(time.Microsecond),
				time.Duration(snap.Quantile(0.5)), time.Duration(snap.Quantile(0.99)))
		}
	}

	if *mcRuns > 0 {
		start = time.Now()
		sampler := mc.NewSampler(enc, 42)
		sampler.SetTracer(tr)
		r := sampler.Run(q, *mcRuns)
		fmt.Printf("Monte-Carlo (%d worlds): observed range [%d, %d] in %v\n",
			*mcRuns, r.Min, r.Max, time.Since(start))
	}
}

func buildEncoding(d *dataset.Dataset, scheme string, k, m, minSupp, fanout int) (*encode.Encoded, error) {
	switch scheme {
	case "km":
		h, err := hierarchy.Build(len(d.Items), fanout, nil)
		if err != nil {
			return nil, err
		}
		g, err := anon.KmAnonymize(d, h, k, m)
		if err != nil {
			return nil, err
		}
		return encode.Generalized(g, d.Items), nil
	case "k":
		h, err := hierarchy.Build(len(d.Items), fanout, nil)
		if err != nil {
			return nil, err
		}
		g, err := anon.KAnonymize(d, h, k)
		if err != nil {
			return nil, err
		}
		return encode.Generalized(g, d.Items), nil
	case "bipartite":
		bg, err := anon.BipartiteAnonymize(d, k, k)
		if err != nil {
			return nil, err
		}
		return encode.Bipartite(d, bg), nil
	case "suppress":
		s, err := anon.SuppressAnonymize(d, minSupp)
		if err != nil {
			return nil, err
		}
		return encode.Suppressed(s, d.Items), nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "licmq:", err)
	os.Exit(1)
}
