// Command licmq answers one of the paper's aggregate queries over an
// anonymized dataset: it anonymizes the input in memory, encodes it
// into LICM, translates the query, and reports the exact (or proven
// outer) lower and upper bounds from the BIP solver — optionally
// alongside the naive Monte-Carlo range for comparison.
//
// Usage:
//
//	licmq -in data.txt -scheme k -k 4 -query q1
//	licmq -in data.txt -scheme bipartite -k 4 -query q3 -mc 20
//
// Observability:
//
//	licmq -in data.txt -query q1 -trace trace.jsonl   # JSON-lines trace
//	licmq -in data.txt -query q1 -verbose             # human-readable trace on stderr
//	licmq -in data.txt -query q3 -debug-addr :6060    # pprof, expvar, Prometheus /metrics, /debug/licm dashboard
//	licmq -in data.txt -query q3 -timelimit 30s       # best-effort bounds on timeout
//	licmq -in data.txt -query q1 -log-level info -log-format json   # structured logs on stderr
//
// Explain (per-query solve forensics, OBSERVABILITY.md "Explain & census"):
//
//	licmq -in data.txt -query q1 -explain                  # human-readable per-component breakdown
//	licmq -in data.txt -query q1 -explain-json report.jsonl  # licm-explain/1 record ("-" = stdout)
//
// Supervised (anytime) solves:
//
//	licmq -in data.txt -query q1 -deadline 5s          # degradation ladder under a hard deadline
//	licmq -in data.txt -query q1 -deadline 5s -strict  # exit 3 unless the result is exact
//
// With -deadline (or -strict) the solve runs under the anytime
// supervisor (internal/super): the result always arrives before the
// deadline with an explicit quality tag — exact, proven-interval,
// sampled, or failed — instead of a hang or a bare error.
//
// Exit status (internal/cliexit): 0 on success, 1 on any error
// (including a store that
// fails -check), 2 on unusable input or flags, and 3 when -strict is
// set and the supervised result degraded below exact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"text/tabwriter"
	"time"

	"licm/internal/anon"
	"licm/internal/cert"
	"licm/internal/cliexit"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/encode"
	"licm/internal/explain"
	"licm/internal/hierarchy"
	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/queries"
	"licm/internal/seedflag"
	"licm/internal/solver"
	"licm/internal/super"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("licmq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "input dataset (licmgen format; required)")
		scheme   = fs.String("scheme", "k", "anonymization scheme: km | k | bipartite | suppress")
		k        = fs.Int("k", 4, "anonymity parameter")
		m        = fs.Int("m", 2, "subset size m (km scheme)")
		minSupp  = fs.Int("minsupport", 10, "support threshold (suppress scheme)")
		fanout   = fs.Int("fanout", 8, "hierarchy fanout")
		query    = fs.String("query", "q1", "query: q1 | q2 | q3")
		q3x      = fs.Int("q3x", 2, "popularity threshold X for q3")
		q3frac   = fs.Float64("q3frac", 0.01, "selectivity of q3 location predicates")
		mcRuns   = fs.Int("mc", 0, "also run naive Monte-Carlo with this many worlds")
		maxNodes = fs.Int64("maxnodes", 2_000_000, "solver node budget (0 = unlimited)")
		lpOut    = fs.String("lp", "", "also export the maximization BIP in CPLEX LP format to this file")
		workers  = fs.Int("workers", 1, "solve independent components with this many workers")
		vet      = fs.Bool("check", false, "run the static diagnostics pass (internal/check) before solving; a provably infeasible store fails fast with its diagnostics")

		tracePath = fs.String("trace", "", "write a JSON-lines trace of operators, solver phases and MC sampling to this file")
		verbose   = fs.Bool("verbose", false, "print a human-readable trace to stderr")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof and expvar (live solver counters) on this address, e.g. :6060")
		timeLimit = fs.Duration("timelimit", 0, "cancel the solve after this long and report best-effort bounds (0 = no limit)")

		deadline = fs.Duration("deadline", 0, "run under the anytime supervisor with this hard deadline; results degrade gracefully with a quality tag (0 = unsupervised)")
		strict   = fs.Bool("strict", false, "supervised solve must be exact: exit 3 on any degraded (proven-interval, sampled, failed) result")
		fallback = fs.Int("fallback-samples", 200, "Monte-Carlo worlds for the supervised solve's sampled fallback (0 disables it)")

		explainFlag = fs.Bool("explain", false, "print a per-component solve breakdown (pruning effect, fingerprints, time shares)")
		seed        = seedflag.Register(fs)
		explainJSON = fs.String("explain-json", "", "write the licm-explain/1 report as one JSON line to this file (\"-\" = stdout)")
		certifyOut  = fs.String("certify", "", "write licm-cert/1 optimality certificates as JSON lines to this file (\"-\" = stdout); check them with licmverify")
	)
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "licmq:", err)
		return cliexit.Findings
	}
	if *in == "" {
		fmt.Fprintln(stderr, "licmq: -in is required")
		return cliexit.Usage
	}
	logger, err := logOpts.NewLogger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "licmq:", err)
		return cliexit.Usage
	}

	tr, closeTrace, err := obs.Setup(*tracePath, *verbose, stderr)
	if err != nil {
		return fail(err)
	}
	defer closeTrace()
	metrics := obs.NewRegistry()
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "debug server on http://%s/ — /debug/pprof/, /debug/vars, /metrics, /debug/licm (dashboard)\n", srv.Addr())
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(stderr, "licmq:", err)
		return cliexit.Usage
	}
	d, err := dataset.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "licmq:", err)
		return cliexit.Usage
	}

	start := time.Now()
	enc, err := buildEncoding(d, *scheme, *k, *m, *minSupp, *fanout)
	if err != nil {
		return fail(err)
	}
	tModel := time.Since(start)
	// One tracer covers the whole pipeline: query operators pick it up
	// from the DB, the solver inherits it via core.Bounds.
	enc.DB.SetTracer(tr)

	var q queries.Query
	switch *query {
	case "q1":
		q = queries.PaperQ1(1000, 40)
	case "q2":
		q = queries.PaperQ2(1000, 40)
	case "q3":
		q = queries.PaperQ3(1000, *q3frac, *q3x)
	default:
		fmt.Fprintf(stderr, "licmq: unknown query %q\n", *query)
		return cliexit.Usage
	}

	start = time.Now()
	rel, err := q.BuildLICM(enc)
	if err != nil {
		return fail(err)
	}
	tQuery := time.Since(start)

	if *lpOut != "" {
		f, err := os.Create(*lpOut)
		if err != nil {
			return fail(err)
		}
		p := &solver.Problem{
			NumVars:     enc.DB.NumVars(),
			Constraints: enc.DB.Constraints(),
			Objective:   core.CountStar(rel),
		}
		if err := solver.WriteLP(f, p, solver.SenseMax); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote BIP instance to %s (%d vars, %d constraints)\n", *lpOut, p.NumVars, len(p.Constraints))
	}

	opts := solver.DefaultOptions()
	opts.MaxNodes = *maxNodes
	opts.Workers = *workers
	opts.Metrics = metrics
	opts.Check = *vet
	if *verbose {
		opts.Progress = func(pi solver.ProgressInfo) {
			fmt.Fprintf(stderr, "progress: %d nodes, %d LP solves, %d propagations, %d incumbents\n",
				pi.Nodes, pi.LPSolves, pi.Propagations, pi.Incumbents)
		}
	}
	if *timeLimit > 0 {
		limit := time.Now().Add(*timeLimit)
		opts.Cancel = func() bool { return time.Now().After(limit) }
	}
	var rec *solver.ExplainRecorder
	if *explainFlag || *explainJSON != "" {
		rec = &solver.ExplainRecorder{}
		opts.Explain = rec
	}
	var crec *solver.CertRecorder
	if *certifyOut != "" {
		crec = &solver.CertRecorder{}
		opts.Certify = crec
	}

	exitCode := 0
	if *deadline > 0 || *strict {
		exitCode = runSupervised(stdout, enc, rel, q, opts, tr, logger,
			*scheme, *k, *deadline, *strict, *fallback,
			seedflag.Derive(*seed, seedflag.FallbackStream))
	} else {
		start = time.Now()
		res, err := core.CountBounds(enc.DB, rel, opts)
		if err != nil {
			var ce *solver.CheckError
			if errors.As(err, &ce) {
				fmt.Fprintln(stderr, "licmq: the encoded store failed static checks:")
				for _, d := range ce.Report.Diags {
					fmt.Fprintln(stderr, "  "+d.String())
				}
				return cliexit.Findings
			}
			return fail(err)
		}
		tSolve := time.Since(start)

		fmt.Fprintf(stdout, "%s over %s(k=%d): ", q.Name(), *scheme, *k)
		if res.MinProven && res.MaxProven {
			fmt.Fprintf(stdout, "exact bounds [%d, %d]\n", res.Min, res.Max)
		} else {
			fmt.Fprintf(stdout, "best found [%d, %d], proven outer bounds [%d, %d]\n",
				res.Min, res.Max, res.MinBound, res.MaxBound)
		}
		if res.Stats.Canceled {
			fmt.Fprintf(stdout, "solve canceled after %v (time limit %v); bounds are best-effort\n",
				res.Stats.TotalTime.Round(time.Millisecond), *timeLimit)
		}
		fmt.Fprintf(stdout, "timing: L-model %v, L-query %v, L-solve %v\n", tModel, tQuery, tSolve)
		fmt.Fprintf(stdout, "solve phases: prune %v, presolve %v, search %v, witness %v\n",
			res.Stats.PruneTime, res.Stats.PresolveTime, res.Stats.SearchTime, res.Stats.WitnessTime)
		fmt.Fprintf(stdout, "problem: %d vars, %d constraints; after pruning %d vars, %d constraints; %d components, %d nodes, %d LP solves, %d propagations\n",
			res.Stats.VarsBefore, res.Stats.ConsBefore,
			res.Stats.VarsAfterPrune, res.Stats.ConsAfterPrune,
			res.Stats.Components, res.Stats.Nodes, res.Stats.LPSolves, res.Stats.Propagations)
		if res.Stats.AllocBytes > 0 || res.Stats.PeakHeap > 0 {
			fmt.Fprintf(stdout, "memory: %.1f MiB allocated during solve, peak heap %.1f MiB\n",
				float64(res.Stats.AllocBytes)/(1<<20), float64(res.Stats.PeakHeap)/(1<<20))
		}
		if res.Stats.WitnessExhausted {
			logger.Warn("witness completion exhausted its node budget",
				"query", q.Name(), "nodes", res.Stats.Nodes)
		}
		for _, h := range []struct{ name, label string }{
			{"solver.lp_ns", "LP relaxation latency"},
			{"solver.node_ns", "per-node latency"},
		} {
			if snap := metrics.Histogram(h.name).Snapshot(); snap.Count > 0 {
				fmt.Fprintf(stdout, "%s: n=%d mean=%v p50<%v p99<%v\n", h.label, snap.Count,
					time.Duration(int64(snap.Mean)).Round(time.Microsecond),
					time.Duration(snap.Quantile(0.5)), time.Duration(snap.Quantile(0.99)))
			}
		}
	}

	if rec != nil {
		rep := explain.Build(q.Name(), rec)
		rep.Scheme = *scheme
		rep.K = *k
		// Feed the single-query census so the explain instruments
		// (licm_explain_components_total, licm_explain_distinct_fingerprints)
		// are live on /metrics and the dashboard alongside the solver's.
		census := explain.NewCensus()
		census.SetMetrics(metrics)
		census.Observe(rep)
		if *explainFlag {
			printExplain(stdout, rep)
		}
		if *explainJSON != "" {
			w := io.Writer(stdout)
			if *explainJSON != "-" {
				f, err := os.Create(*explainJSON)
				if err != nil {
					return fail(err)
				}
				defer f.Close()
				w = f
			}
			if err := explain.WriteJSONL(w, rep); err != nil {
				return fail(err)
			}
		}
	}
	if crec != nil {
		certs, err := cert.Build(q.Name(), *scheme, *k, crec)
		if err != nil {
			return fail(err)
		}
		w := io.Writer(stdout)
		if *certifyOut != "-" {
			f, err := os.Create(*certifyOut)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			w = f
		}
		for _, c := range certs {
			if err := cert.WriteJSONL(w, c); err != nil {
				return fail(err)
			}
		}
	}
	if exitCode != 0 {
		return exitCode
	}

	if *mcRuns > 0 {
		start = time.Now()
		sampler := mc.NewSampler(enc, seedflag.Derive(*seed, seedflag.MCStream))
		sampler.SetTracer(tr)
		r := sampler.Run(q, *mcRuns)
		fmt.Fprintf(stdout, "Monte-Carlo (%d worlds): observed range [%d, %d] in %v\n",
			*mcRuns, r.Min, r.Max, time.Since(start))
	}
	return cliexit.OK
}

// printExplain renders the licm-explain/1 report for humans: the
// pruning funnel, then one table per run attributing the search time
// to the decomposed components.
func printExplain(w io.Writer, rep *explain.Report) {
	p := rep.Prune
	fmt.Fprintf(w, "explain: quality=%s; store %d vars, %d cons -> pruned %d vars, %d cons; presolve fixed %d\n",
		rep.Quality, p.VarsBefore, p.ConsBefore, p.VarsAfter, p.ConsAfter, p.FixedByPresolve)
	for _, run := range rep.Runs {
		fmt.Fprintf(w, "  %s:", run.Sense)
		if run.Quality != "" {
			fmt.Fprintf(w, " quality=%s", run.Quality)
		}
		fmt.Fprintf(w, " nodes=%d lp_solves=%d propagations=%d search=%v witness=%v total=%v",
			run.Nodes, run.LPSolves, run.Propagations,
			time.Duration(run.SearchNs).Round(time.Microsecond),
			time.Duration(run.WitnessNs).Round(time.Microsecond),
			time.Duration(run.TotalNs).Round(time.Microsecond))
		if run.Canceled {
			fmt.Fprint(w, " canceled")
		}
		if run.Err != "" {
			fmt.Fprintf(w, " err=%q", run.Err)
		}
		fmt.Fprintln(w)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "    comp\tfingerprint\tvars\tcons\tnodes\tlp\tsolve\tlp_time\tshare")
		for _, c := range run.Components {
			share := "-"
			if run.SearchNs > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(c.SolveNs)/float64(run.SearchNs))
			}
			fmt.Fprintf(tw, "    %d\t%s\t%d\t%d\t%d\t%d\t%v\t%v\t%s\n",
				c.Index, c.Fingerprint, c.Vars, c.Cons, c.Nodes, c.LPSolves,
				time.Duration(c.SolveNs).Round(time.Microsecond),
				time.Duration(c.LPNs).Round(time.Microsecond), share)
		}
		tw.Flush()
	}
}

// runSupervised answers the query through the anytime supervisor and
// prints the quality-tagged result. Returns the process exit code: 0,
// or 3 when strict is set and the result degraded below exact.
func runSupervised(stdout io.Writer, enc *encode.Encoded, rel *core.Relation, q queries.Query,
	opts solver.Options, tr *obs.Tracer, logger *slog.Logger, scheme string, k int,
	deadline time.Duration, strict bool, fallbackSamples int, fallbackSeed int64) int {
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	obj := core.CountStar(rel)
	opts.Trace = tr
	cfg := super.Config{
		Solver: opts,
		Sample: super.MCFallback(enc, obj, fallbackSeed, fallbackSamples),
		Log:    logger,
	}
	out := super.Bounds(ctx, core.BuildProblem(enc.DB, obj), cfg)

	fmt.Fprintf(stdout, "%s over %s(k=%d): quality=%s", q.Name(), scheme, k, out.Quality)
	switch {
	case out.Infeasible:
		fmt.Fprintf(stdout, " infeasible (no possible world satisfies the constraints)\n")
	case out.Quality == super.Exact:
		fmt.Fprintf(stdout, " bounds [%d, %d]\n", out.Min.Lo, out.Max.Hi)
	case out.Quality == super.ProvenInterval:
		lo, hi := out.Interval()
		fmt.Fprintf(stdout, " proven outer interval [%d, %d] (min in [%d, %d], max in [%d, %d])\n",
			lo, hi, out.Min.Lo, out.Min.Hi, out.Max.Lo, out.Max.Hi)
	case out.Quality == super.Sampled:
		fmt.Fprintf(stdout, " sampled range [%d, %d] — NOT proven bounds\n", out.Min.Lo, out.Max.Hi)
	default:
		fmt.Fprintf(stdout, " no usable result\n")
	}
	for _, sd := range []struct {
		name string
		s    super.Side
	}{{"min", out.Min}, {"max", out.Max}} {
		if sd.s.Err != nil {
			fmt.Fprintf(stdout, "  %s side degraded to %s: %v\n", sd.name, sd.s.Quality, sd.s.Err)
		}
	}
	fmt.Fprintf(stdout, "supervisor: elapsed %v, retries %d, panics recovered %d\n",
		out.Elapsed.Round(time.Millisecond), out.Retries, out.PanicsRecovered)
	if alloc := out.Min.Stats.AllocBytes + out.Max.Stats.AllocBytes; alloc > 0 {
		peak := out.Min.Stats.PeakHeap
		if out.Max.Stats.PeakHeap > peak {
			peak = out.Max.Stats.PeakHeap
		}
		fmt.Fprintf(stdout, "memory: %.1f MiB allocated during solve, peak heap %.1f MiB\n",
			float64(alloc)/(1<<20), float64(peak)/(1<<20))
	}
	if strict && out.Quality != super.Exact {
		fmt.Fprintf(stdout, "strict mode: result degraded below exact\n")
		return cliexit.Degraded
	}
	return cliexit.OK
}

func buildEncoding(d *dataset.Dataset, scheme string, k, m, minSupp, fanout int) (*encode.Encoded, error) {
	switch scheme {
	case "km":
		h, err := hierarchy.Build(len(d.Items), fanout, nil)
		if err != nil {
			return nil, err
		}
		g, err := anon.KmAnonymize(d, h, k, m)
		if err != nil {
			return nil, err
		}
		return encode.Generalized(g, d.Items), nil
	case "k":
		h, err := hierarchy.Build(len(d.Items), fanout, nil)
		if err != nil {
			return nil, err
		}
		g, err := anon.KAnonymize(d, h, k)
		if err != nil {
			return nil, err
		}
		return encode.Generalized(g, d.Items), nil
	case "bipartite":
		bg, err := anon.BipartiteAnonymize(d, k, k)
		if err != nil {
			return nil, err
		}
		return encode.Bipartite(d, bg), nil
	case "suppress":
		s, err := anon.SuppressAnonymize(d, minSupp)
		if err != nil {
			return nil, err
		}
		return encode.Suppressed(s, d.Items), nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
}
