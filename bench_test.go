// Package licm's root benchmarks regenerate every table and figure of
// the paper's evaluation at a reduced, benchmark-friendly scale, plus
// ablations of the design choices listed in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// For paper-scale tables use cmd/licmexp, which runs the same harness
// at configurable scale and prints the full series.
package licm_test

import (
	"io"
	"testing"

	"licm/internal/bench"
	"licm/internal/core"
	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/queries"
	"licm/internal/solver"
)

// benchConfig is a reduced-scale configuration so a full -bench=. run
// stays in the minutes range.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.NumTransactions = 500
	cfg.NumItems = 200
	cfg.MCSamples = 20
	cfg.Q3Frac = 0
	cfg.Solver.MaxNodes = 150_000
	return cfg
}

// runCell is the common body: one full (encode, query, solve, MC)
// experiment cell per iteration.
func runCell(b *testing.B, scheme bench.Scheme, queryIdx, k int) {
	b.Helper()
	cfg := benchConfig()
	q := cfg.Queries()[queryIdx]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell, err := cfg.RunCell(scheme, q, k)
		if err != nil {
			b.Fatal(err)
		}
		if cell.LMin > cell.LMax {
			b.Fatalf("inverted bounds %+v", cell)
		}
	}
}

// --- Figure 5: one benchmark per (scheme, query) panel at k=4. ---

func BenchmarkFig5KmQ1(b *testing.B)        { runCell(b, bench.SchemeKm, 0, 4) }
func BenchmarkFig5KmQ2(b *testing.B)        { runCell(b, bench.SchemeKm, 1, 4) }
func BenchmarkFig5KmQ3(b *testing.B)        { runCell(b, bench.SchemeKm, 2, 4) }
func BenchmarkFig5KAnonQ1(b *testing.B)     { runCell(b, bench.SchemeK, 0, 4) }
func BenchmarkFig5KAnonQ2(b *testing.B)     { runCell(b, bench.SchemeK, 1, 4) }
func BenchmarkFig5KAnonQ3(b *testing.B)     { runCell(b, bench.SchemeK, 2, 4) }
func BenchmarkFig5BipartiteQ1(b *testing.B) { runCell(b, bench.SchemeBipartite, 0, 4) }
func BenchmarkFig5BipartiteQ2(b *testing.B) { runCell(b, bench.SchemeBipartite, 1, 4) }
func BenchmarkFig5BipartiteQ3(b *testing.B) { runCell(b, bench.SchemeBipartite, 2, 4) }

// --- Figure 6: the timing split is the cell itself; benchmark the
// three phases separately on the k-anonymity Query 2 instance. ---

func BenchmarkFig6LModel(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := cfg.Encode(bench.SchemeK, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6LQuery(b *testing.B) {
	cfg := benchConfig()
	q := cfg.Queries()[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		enc, _, err := cfg.Encode(bench.SchemeK, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := q.BuildLICM(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6LSolve(b *testing.B) {
	cfg := benchConfig()
	q := cfg.Queries()[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		enc, _, err := cfg.Encode(bench.SchemeK, 8)
		if err != nil {
			b.Fatal(err)
		}
		rel, err := q.BuildLICM(enc)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := core.CountBounds(enc.DB, rel, cfg.Solver); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6MC(b *testing.B) {
	cfg := benchConfig()
	q := cfg.Queries()[1]
	enc, _, err := cfg.Encode(bench.SchemeK, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler := mc.NewSampler(enc, int64(i))
		sampler.Run(q, cfg.MCSamples)
	}
}

// --- Figure 7: pruning effectiveness (the measured quantity is the
// size reduction; the benchmark times the measurement pipeline). ---

func BenchmarkFig7Pruning(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, err := cfg.Fig7(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.VarsPruned > c.VarsQuery {
				b.Fatalf("pruning grew the problem: %+v", c)
			}
		}
	}
}

// --- Ablations (DESIGN.md §5). ---

func benchAblation(b *testing.B, mutate func(*solver.Options)) {
	cfg := benchConfig()
	q := cfg.Queries()[1]
	enc, _, err := cfg.Encode(bench.SchemeK, 8)
	if err != nil {
		b.Fatal(err)
	}
	rel, err := q.BuildLICM(enc)
	if err != nil {
		b.Fatal(err)
	}
	opts := cfg.Solver
	mutate(&opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CountBounds(enc.DB, rel, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBaseline(b *testing.B) { benchAblation(b, func(o *solver.Options) {}) }
func BenchmarkAblationNoPruning(b *testing.B) {
	benchAblation(b, func(o *solver.Options) { o.Prune = false })
}
func BenchmarkAblationNoDecompose(b *testing.B) {
	benchAblation(b, func(o *solver.Options) { o.Decompose = false })
}
func BenchmarkAblationNoLPBound(b *testing.B) {
	benchAblation(b, func(o *solver.Options) { o.UseLP = false })
}

func BenchmarkAblationMCSamples100(b *testing.B) {
	cfg := benchConfig()
	q := cfg.Queries()[0]
	enc, _, err := cfg.Encode(bench.SchemeK, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler := mc.NewSampler(enc, int64(i))
		sampler.Run(q, 100)
	}
}

// BenchmarkQueryTranslationOnly isolates the LICM operator layer
// (selection, count predicates, intersection, projection) without the
// solver.
func BenchmarkQueryTranslationOnly(b *testing.B) {
	cfg := benchConfig()
	specs := cfg.Queries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		enc, _, err := cfg.Encode(bench.SchemeK, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, q := range specs {
			if _, err := q.BuildLICM(enc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Observability overhead: the same cell solved with tracing off
// (the nil fast path every untraced caller takes) and fully on
// (JSON-lines to io.Discard plus live metrics). Compare the two to
// verify the disabled path costs nothing measurable. ---

func benchSolveObs(b *testing.B, traced bool) {
	b.Helper()
	cfg := benchConfig()
	q := cfg.Queries()[1]
	opts := cfg.Solver
	if traced {
		opts.Trace = obs.New(obs.NewJSONLSink(io.Discard))
		opts.Metrics = obs.NewRegistry()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		enc, _, err := cfg.Encode(bench.SchemeK, 8)
		if err != nil {
			b.Fatal(err)
		}
		rel, err := q.BuildLICM(enc)
		if err != nil {
			b.Fatal(err)
		}
		if traced {
			enc.DB.SetTracer(opts.Trace)
		}
		b.StartTimer()
		if _, err := core.CountBounds(enc.DB, rel, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveTracingOff(b *testing.B) { benchSolveObs(b, false) }
func BenchmarkSolveTracingOn(b *testing.B)  { benchSolveObs(b, true) }

var _ = queries.Pred{} // keep the import for future spec tweaks
